package report

import (
	"fmt"
	"sort"
	"strings"

	"smores/internal/codec"
	"smores/internal/core"
	"smores/internal/dbi"
	"smores/internal/floats"
	"smores/internal/gddr6x"
	"smores/internal/hwcost"
	"smores/internal/mta"
	"smores/internal/pam4"
	"smores/internal/stats"
)

// Paper-published reference values used in the comparison columns.
const (
	PaperPAM4PerBit        = 528.8
	PaperPAM4DBIPerBit     = 446.5
	PaperMTAPerBit         = 574.8
	PaperMTAPostPerBit     = 900.2
	PaperVariableSaving    = 0.282
	PaperStaticSaving      = 0.268
	PaperConservSaving     = 0.252
	PaperPerfDegradation   = 0.00024
	PaperDRAMTotalPJPerBit = 7.25
)

// paperTable4 maps codec names to the paper's Table IV fJ/bit.
var paperTable4 = map[string]float64{
	"2b1s PAM4":     528.8,
	"2b1s PAM4/DBI": 446.5,
	"MTA":           574.8,
	"MTA+postamble": 900.2,
	"4b3s-3":        448.4,
	"4b3s-3/DBI":    432.3,
	"4b4s-3":        382.5,
	"4b4s-3/DBI":    374.8,
	"4b6s-3":        331.8,
	"4b6s-3/DBI":    331.4,
	"4b8s-3":        319.8,
	"4b8s-3/DBI":    319.7,
}

// Fig1SymbolEnergy renders the per-level current/energy table behind the
// paper's Figure 1.
func Fig1SymbolEnergy(m *pam4.EnergyModel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — PAM4 symbol energies (calibrated GDDR6X model)\n")
	fmt.Fprintf(&b, "%-6s %10s %12s %12s\n", "level", "volts", "current(mA)", "energy(fJ)")
	pts := m.Driver().OperatingPoints()
	for _, p := range pts {
		fmt.Fprintf(&b, "%-6s %10.3f %12.3f %12.1f\n",
			p.Level, p.Volts, p.SupplyAmps*1e3, m.SymbolEnergy(p.Level))
	}
	fmt.Fprintf(&b, "mean symbol %.1f fJ (%.1f fJ/bit; paper: 1057.5 / 528.8)\n",
		m.MeanSymbolEnergy(), m.PAM4PerBit())
	return b.String()
}

// Fig2DriverTable renders the electrical operating points (Figure 2).
func Fig2DriverTable(d pam4.DriverConfig) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — GDDR6X PAM4 driver network (VDDQ=%.2fV, legs=%d×%gΩ, term=%gΩ)\n",
		d.VDDQ, d.Legs, d.LegOhms, d.TermOhms)
	fmt.Fprintf(&b, "%-6s %8s %12s %12s %10s %12s\n",
		"level", "pd-legs", "pullup(Ω)", "pulldn(Ω)", "volts", "current(mA)")
	for _, p := range d.OperatingPoints() {
		pd := "∞"
		if p.PullDownLegs > 0 {
			pd = fmt.Sprintf("%.1f", p.PullDownOhms)
		}
		fmt.Fprintf(&b, "%-6s %8d %12.1f %12s %10.3f %12.3f\n",
			p.Level, p.PullDownLegs, p.PullUpOhms, pd, p.Volts, p.SupplyAmps*1e3)
	}
	fmt.Fprintf(&b, "level spacing: %.0f mV (paper: 225 mV)\n", d.LevelSpacing()*1e3)
	return b.String()
}

// Table2Config renders the evaluated system configuration (Table II) with
// derived cross-checks: 384 data pins at 19.5 Gbps give the paper's
// 936.2 GB/s (reported as Gbps in the paper's table), and a 32-byte
// sector occupies 8 UIs on a 16-pin channel.
func Table2Config() string {
	const (
		sms          = 82
		busBits      = 384
		pinRateGbps  = 19.5
		channels     = busBits / 16
		dramGB       = 24
		vddq         = 1.35
		sectorsPerCL = 4
	)
	bwGBs := float64(busBits) * pinRateGbps / 8
	t := gddr6x.DefaultTiming()
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — evaluated system (NVIDIA RTX 3090 class)\n")
	fmt.Fprintf(&b, "  compute units:   %d SMs\n", sms)
	fmt.Fprintf(&b, "  last-level cache: 6 MB, %d 32-byte sectors per cacheline\n", sectorsPerCL)
	fmt.Fprintf(&b, "  memory system:   %d-bit bus, %d GB GDDR6X, %d 16-pin channels\n", busBits, dramGB, channels)
	fmt.Fprintf(&b, "  bandwidth:       %.1f GB/s total (%g Gbps/pin; paper: 936.2)\n", bwGBs, pinRateGbps)
	fmt.Fprintf(&b, "  supply:          VDDQ = %.2f V, driver 120/120 Ω, termination 40 Ω\n", vddq)
	fmt.Fprintf(&b, "  timing (clocks): RL=%d WL=%d tCCD=%d/%d tRCD=%d tRP=%d tRAS=%d tREFI=%d tRFC=%d\n",
		t.RL, t.WL, t.TCCD, t.TCCDL, t.TRCD, t.TRP, t.TRAS, t.TREFI, t.TRFC)
	fmt.Fprintf(&b, "  organization:    %d banks in %d groups, %d-sector rows, %d-sector interleave\n",
		t.Banks, t.BankGroups, t.RowSectors, t.ChunkSectors)
	return b.String()
}

// Table1MTA renders the canonical 7-bit→4-symbol MTA table (Table I).
// The paper's exact value assignment is not recoverable from the scan;
// this is the canonical ascending-energy assignment.
func Table1MTA(c *mta.Codec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — MTA 7-bit → 4-symbol table (%s, canonical assignment)\n", c.Variant())
	table := c.Table()
	fmt.Fprintf(&b, "%-10s", "bits[2:0]:")
	for low := 0; low < 8; low++ {
		fmt.Fprintf(&b, " %4b", low)
	}
	b.WriteByte('\n')
	for high := 0; high < 16; high++ {
		fmt.Fprintf(&b, "%07b/hi=%x", high<<3, high)
		for low := 0; low < 8; low++ {
			fmt.Fprintf(&b, " %4s", table[high*8+low])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "expected %.1f fJ/bit steady-state (paper: 574.8)\n", c.ExpectedPerBit())
	return b.String()
}

// Table3CodeSpace renders the constrained code-space sizes (Table III).
func Table3CodeSpace() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III — restricted code-space sizes (need 16 for 4-bit inputs)\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %16s\n", "symbols", "2-level", "3-level", "4-level(no 3ΔV)")
	for n := 2; n <= 8; n++ {
		c2, err := codec.Count(codec.EnumConstraint{Symbols: n, MaxLevel: pam4.L1, MaxStartLevel: pam4.L1, MaxStep: 2})
		if err != nil {
			return "", err
		}
		c3, err := codec.Count(codec.EnumConstraint{Symbols: n, MaxLevel: pam4.L2, MaxStartLevel: pam4.L2, MaxStep: 2})
		if err != nil {
			return "", err
		}
		c4, err := codec.Count(codec.EnumConstraint{Symbols: n, MaxLevel: pam4.L3, MaxStartLevel: pam4.L2, MaxStep: 2})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-8d %12d %12d %16d\n", n, c2, c3, c4)
	}
	return b.String(), nil
}

// table4Row is one Table IV comparison line.
type table4Row struct {
	name    string
	wire    float64 // wire-only fJ/bit
	logic   float64 // codec logic fJ/bit
	postamb float64 // postamble adder fJ/bit
}

func (r table4Row) total() float64 { return r.wire + r.logic + r.postamb }

// table4Rows computes every Table IV row from first principles.
func table4Rows(m *pam4.EnergyModel) ([]table4Row, error) {
	var rows []table4Row
	rows = append(rows,
		table4Row{name: "2b1s PAM4", wire: dbi.NewPAM4Codec(false, m).ExpectedPerBit()},
		table4Row{name: "2b1s PAM4/DBI", wire: dbi.NewPAM4Codec(true, m).ExpectedPerBit()},
	)
	mc := mta.New(m)
	rows = append(rows, table4Row{name: "MTA", wire: mc.ExpectedPerBit()})
	post := 18 * 4 * m.PostambleWireUIEnergy() / 256
	rows = append(rows, table4Row{name: "MTA+postamble", wire: mc.ExpectedPerBit(), postamb: post})

	for _, withDBI := range []bool{false, true} {
		fam, err := core.NewFamily(m, core.FamilyConfig{DBI: withDBI, Levels: 3, PaperFaithful: true})
		if err != nil {
			return nil, err
		}
		for _, n := range []int{3, 4, 6, 8} {
			sc := fam.ByLength(n)
			rows = append(rows, table4Row{
				name:  sc.Name(),
				wire:  sc.ExpectedPerBit(),
				logic: 7, // encoder+decoder logic, §V-A/§V-B
			})
		}
	}
	return rows, nil
}

// Table4Energy renders the per-encoding energy comparison (Table IV).
func Table4Energy(m *pam4.EnergyModel) (string, error) {
	rows, err := table4Rows(m)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV — energy of encodings (fJ/bit)\n")
	fmt.Fprintf(&b, "%-14s %10s %8s %10s %10s %8s\n",
		"code", "wire", "logic", "total", "paper", "Δ%")
	for _, r := range rows {
		paper, ok := paperTable4[r.name]
		delta := "--"
		if ok {
			delta = fmt.Sprintf("%+.1f", (r.total()/paper-1)*100)
		}
		fmt.Fprintf(&b, "%-14s %10.1f %8.1f %10.1f %10.1f %8s\n",
			r.name, r.wire+r.postamb, r.logic, r.total(), paper, delta)
	}
	return b.String(), nil
}

// Fig6Survey renders the code-survey curve (Figure 6): fJ/bit versus
// output code length for 2- and 3-level codes with and without DBI, plus
// the PAM4/MTA baselines.
func Fig6Survey(m *pam4.EnergyModel) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — sparse-code survey (wire fJ/bit vs output symbols)\n")
	fmt.Fprintf(&b, "baselines: PAM4 %.1f | PAM4/DBI %.1f | MTA %.1f | MTA+postamble %.1f\n",
		m.PAM4PerBit(), dbi.NewPAM4Codec(true, m).ExpectedPerBit(),
		mta.New(m).ExpectedPerBit(), mta.New(m).ExpectedPerBit()+18*4*m.PostambleWireUIEnergy()/256)
	fmt.Fprintf(&b, "%-8s %10s %12s %10s %12s\n", "symbols", "2-level", "2-level/DBI", "3-level", "3-level/DBI")
	families := map[[2]int]*core.Family{}
	for _, lv := range []int{2, 3} {
		for _, d := range []int{0, 1} {
			fam, err := core.NewFamily(m, core.FamilyConfig{DBI: d == 1, Levels: lv})
			if err != nil {
				return "", err
			}
			families[[2]int{lv, d}] = fam
		}
	}
	cell := func(lv, d, n int) string {
		sc := families[[2]int{lv, d}].ByLength(n)
		if sc == nil {
			return "--"
		}
		return fmt.Sprintf("%.1f", sc.ExpectedPerBit())
	}
	for n := 3; n <= 8; n++ {
		fmt.Fprintf(&b, "%-8d %10s %12s %10s %12s\n",
			n, cell(2, 0, n), cell(2, 1, n), cell(3, 0, n), cell(3, 1, n))
	}
	return b.String(), nil
}

// Fig7Hardware renders encoder area/delay estimates (Figure 7).
func Fig7Hardware(m *pam4.EnergyModel) (string, error) {
	reports, err := hwcost.Fig7Reports(m)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — encoder hardware cost (NAND2 equivalents)\n")
	fmt.Fprintf(&b, "%-14s %12s %12s %12s %10s\n", "encoder", "area(NAND2)", "area(µm²)", "delay(NAND2)", "delay(ps)")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-14s %12.0f %12.1f %12.1f %10.0f\n",
			r.Name, r.Cost.AreaNAND2, r.Cost.AreaUM2(), r.Cost.DelayNAND2, r.Cost.DelayPS())
	}
	decoders, err := hwcost.DecoderReports(m)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "decoders (the paper argues these match encoder timing):\n")
	for _, r := range decoders {
		fmt.Fprintf(&b, "%-14s %12.0f %12.1f %12.1f %10.0f\n",
			r.Name, r.Cost.AreaNAND2, r.Cost.AreaUM2(), r.Cost.DelayNAND2, r.Cost.DelayPS())
	}
	return b.String(), nil
}

// SuiteSummary renders per-suite mean normalized energy for each scheme —
// the aggregate view of Figure 8.
func SuiteSummary(baseline FleetResult, schemes []FleetResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Per-suite mean normalized energy (vs %s)\n%-10s %6s", "baseline", "suite", "apps")
	for _, s := range schemes {
		fmt.Fprintf(&b, " %24s", s.Label)
	}
	b.WriteByte('\n')
	suites := map[string][]int{}
	var order []string
	for i, r := range baseline.Results {
		if _, seen := suites[r.App.Suite]; !seen {
			order = append(order, r.App.Suite)
		}
		suites[r.App.Suite] = append(suites[r.App.Suite], i)
	}
	for _, suite := range order {
		idx := suites[suite]
		fmt.Fprintf(&b, "%-10s %6d", suite, len(idx))
		for _, s := range schemes {
			var ratios []float64
			for _, i := range idx {
				ratios = append(ratios, s.Results[i].PerBit/baseline.Results[i].PerBit)
			}
			fmt.Fprintf(&b, " %24.3f", stats.Geomean(ratios))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DBIAblation renders the §V-A ablation: encoder area and delay saved by
// dropping the DBI stage (the paper quotes 42% at 4b3s up to 86% at 4b8s,
// with delay cut by more than half).
func DBIAblation(m *pam4.EnergyModel) string {
	reports, err := hwcost.Fig7Reports(m)
	if err != nil {
		return "DBI ablation unavailable: " + err.Error()
	}
	byName := map[string]hwcost.Cost{}
	for _, r := range reports {
		byName[r.Name] = r.Cost
	}
	var b strings.Builder
	fmt.Fprintf(&b, "DBI-removal ablation (paper: 42%%→86%% area, delay cut >2×)\n")
	fmt.Fprintf(&b, "%-8s %12s %12s\n", "code", "area saved", "delay saved")
	for _, n := range []int{3, 4, 6, 8} {
		name := fmt.Sprintf("4b%ds-3", n)
		with, without := byName[name+"/DBI"], byName[name]
		if floats.Eq(with.AreaNAND2, 0) {
			continue
		}
		fmt.Fprintf(&b, "%-8s %11.0f%% %11.0f%%\n", name,
			(1-without.AreaNAND2/with.AreaNAND2)*100,
			(1-without.DelayNAND2/with.DelayNAND2)*100)
	}
	return b.String()
}

// Fig5Gaps renders the idle-gap distributions (Figure 5) from a baseline
// fleet run.
func Fig5Gaps(base FleetResult) string {
	var b strings.Builder
	render := func(title string, h *stats.Histogram, paper0, paper1 float64) {
		fmt.Fprintf(&b, "%s (paper: gap0 %.1f%%, gap1 %.1f%%, >16 6.9%%)\n", title, paper0*100, paper1*100)
		fmt.Fprintf(&b, "  gap0 %.1f%% | gap1 %.1f%% | gap2 %.1f%% | gap3-16 %.1f%% | >16 %.1f%%\n",
			h.Fraction(0)*100, h.Fraction(1)*100, h.Fraction(2)*100,
			(h.TailFraction(3)-h.OverflowFraction())*100, h.OverflowFraction()*100)
	}
	reads, err := base.AggregateGaps(true)
	if err != nil {
		return "Figure 5 unavailable: " + err.Error()
	}
	writes, err := base.AggregateGaps(false)
	if err != nil {
		return "Figure 5 unavailable: " + err.Error()
	}
	render("Figure 5a — idle cycles after READs", reads, 0.592, 0.291)
	render("Figure 5b — idle cycles after WRITEs", writes, 0.591, 0.302)
	b.WriteString("per-app read gap-0 / gap-1 / >16 fractions:\n")
	for _, r := range base.Results {
		h := r.ReadGaps
		fmt.Fprintf(&b, "  %-16s %-10s %5.1f%% %5.1f%% %5.1f%%\n",
			r.App.Name, r.App.Suite, h.Fraction(0)*100, h.Fraction(1)*100, h.OverflowFraction()*100)
	}
	return b.String()
}

// Fig8Energy renders per-app energies normalized to a baseline fleet run
// (Figure 8a uses the MTA+postamble baseline, 8b the optimized MTA
// baseline). Apps are sorted by suite then ascending idle frequency, as
// in the paper.
func Fig8Energy(baseline FleetResult, schemes []FleetResult, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-16s %-10s %8s", title, "app", "suite", "idlefreq")
	for _, s := range schemes {
		fmt.Fprintf(&b, " %22s", s.Label)
	}
	b.WriteByte('\n')

	order := make([]int, len(baseline.Results))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, c int) bool {
		ra, rc := baseline.Results[order[a]], baseline.Results[order[c]]
		if ra.App.Suite != rc.App.Suite {
			return ra.App.Suite < rc.App.Suite
		}
		return ra.IdleFrequency < rc.IdleFrequency
	})
	for _, i := range order {
		base := baseline.Results[i]
		fmt.Fprintf(&b, "%-16s %-10s %8.2f", base.App.Name, base.App.Suite, base.IdleFrequency)
		for _, s := range schemes {
			fmt.Fprintf(&b, " %22.3f", s.Results[i].PerBit/base.PerBit)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-16s %-10s %8s", "MEAN", "", "")
	for _, s := range schemes {
		fmt.Fprintf(&b, " %22.3f", s.MeanPerBit()/baseline.MeanPerBit())
	}
	b.WriteByte('\n')
	return b.String()
}

// Table5 renders the scheme-comparison savings (Table V).
func Table5(baseline FleetResult, variable, static, conservative FleetResult) string {
	var b strings.Builder
	base := baseline.MeanPerBit()
	fmt.Fprintf(&b, "Table V — energy saving vs baseline MTA+postamble (%.1f fJ/bit)\n", base)
	fmt.Fprintf(&b, "%-14s %-24s %10s %10s\n", "gap detection", "code specification", "saving", "paper")
	row := func(det, spec string, fr FleetResult, paper float64) {
		fmt.Fprintf(&b, "%-14s %-24s %9.1f%% %9.1f%%\n",
			det, spec, (1-fr.MeanPerBit()/base)*100, paper*100)
	}
	row("exhaustive", "variable (4b{3:8}s-3)", variable, PaperVariableSaving)
	row("exhaustive", "static (4b3s-3)", static, PaperStaticSaving)
	row("conservative(8)", "static (4b3s-3)", conservative, PaperConservSaving)
	return b.String()
}

// PerfTable renders the performance impact of each scheme relative to the
// baseline (the paper reports 0.024% average degradation).
func PerfTable(baseline FleetResult, schemes []FleetResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Performance impact (execution clocks vs baseline; paper: 0.024%% avg, 0.15%% max)\n")
	for _, s := range schemes {
		var ratios []float64
		worst := 0.0
		for i := range s.Results {
			r := float64(s.Results[i].Clocks)/float64(baseline.Results[i].Clocks) - 1
			ratios = append(ratios, r)
			if r > worst {
				worst = r
			}
		}
		fmt.Fprintf(&b, "  %-28s mean %+0.4f%%  worst %+0.4f%%\n",
			s.Label, stats.Mean(ratios)*100, worst*100)
	}
	return b.String()
}

// TotalPowerContext renders the §V-B total-DRAM-power contextualization:
// transfer energy is ≈10% of the 7.25 pJ/bit DRAM total, so the I/O
// saving is ≈2.5% of total DRAM power.
func TotalPowerContext(baseline, best FleetResult) string {
	var b strings.Builder
	base := baseline.MeanPerBit()
	saving := base - best.MeanPerBit()
	share := base / (PaperDRAMTotalPJPerBit * 1000)
	total := saving / (PaperDRAMTotalPJPerBit * 1000)
	fmt.Fprintf(&b, "Total-power context (§V-B)\n")
	fmt.Fprintf(&b, "  baseline transfer energy: %.1f fJ/bit (paper: 706.9 + 10 logic)\n", base)
	fmt.Fprintf(&b, "  transfer share of %.2f pJ/bit DRAM total: %.1f%% (paper: ≈10%%)\n",
		PaperDRAMTotalPJPerBit, share*100)
	fmt.Fprintf(&b, "  SMOREs saving of total DRAM power: %.1f%% (paper: ≈2.5%%)\n", total*100)
	return b.String()
}
