package report

import (
	"math"
	"testing"

	"smores/internal/core"
	"smores/internal/memctrl"
	"smores/internal/workload"
)

func TestMultiChannelBasics(t *testing.T) {
	p, _ := workload.ByName("srad")
	mr, err := RunAppMultiChannel(p, RunSpec{
		Policy:   memctrl.BaselineMTA,
		Accesses: 4000, Seed: 5,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Channels != 4 || len(mr.PerChannel) != 4 {
		t.Fatalf("channel bookkeeping wrong: %+v", mr)
	}
	if mr.Reads == 0 || mr.PerBit <= 0 {
		t.Fatal("no traffic simulated")
	}
	// Round-robin striping balances traffic across channels.
	if bal := mr.ChannelBalance(); bal > 1.3 {
		t.Errorf("channel imbalance %.2f, want ≤1.3", bal)
	}
	// Total transferred bits across channels equals the request count.
	var bits float64
	for _, st := range mr.PerChannel {
		bits += st.DataBits
	}
	if want := float64(mr.Reads+mr.Writes) * 32 * 8; math.Abs(bits-want) > 1e-6 {
		t.Errorf("bits accounted %.0f, want %.0f", bits, want)
	}
}

func TestMultiChannelScalesThroughput(t *testing.T) {
	p, _ := workload.ByName("resnet50")
	run := func(channels int) int64 {
		mr, err := RunAppMultiChannel(p, RunSpec{
			Policy:   memctrl.BaselineMTA,
			Accesses: 6000, Seed: 6,
		}, channels)
		if err != nil {
			t.Fatal(err)
		}
		return mr.Clocks
	}
	one := run(1)
	four := run(4)
	if four >= one {
		t.Errorf("4 channels (%d clocks) not faster than 1 (%d)", four, one)
	}
}

func TestMultiChannelSMOREsSavesEnergy(t *testing.T) {
	p, _ := workload.ByName("bfs")
	base, err := RunAppMultiChannel(p, RunSpec{
		Policy: memctrl.BaselineMTA, Accesses: 4000, Seed: 7,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := RunAppMultiChannel(p, RunSpec{
		Policy:   memctrl.SMOREs,
		Scheme:   core.Scheme{Specification: core.StaticCode, Detection: core.Exhaustive},
		Accesses: 4000, Seed: 7,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sm.PerBit >= base.PerBit {
		t.Errorf("multi-channel SMOREs (%.1f) not cheaper than baseline (%.1f)", sm.PerBit, base.PerBit)
	}
	if sm.Label != "smores(exhaustive/static)" {
		t.Errorf("label = %q", sm.Label)
	}
}

func TestMultiChannelValidation(t *testing.T) {
	p, _ := workload.ByName("bfs")
	if _, err := RunAppMultiChannel(p, RunSpec{Policy: memctrl.BaselineMTA, Accesses: 10}, 0); err == nil {
		t.Error("zero channels must error")
	}
	bad := p
	bad.MSHRs = 0
	if _, err := RunAppMultiChannel(bad, RunSpec{Accesses: 10}, 2); err == nil {
		t.Error("invalid profile must error")
	}
}
