package report

import (
	"math"
	"testing"

	"smores/internal/bus"
	"smores/internal/core"
	"smores/internal/fault"
	"smores/internal/floats"
	"smores/internal/memctrl"
	"smores/internal/workload"
)

func TestMultiChannelBasics(t *testing.T) {
	p, _ := workload.ByName("srad")
	mr, err := RunAppMultiChannel(p, RunSpec{
		Policy:   memctrl.BaselineMTA,
		Accesses: 4000, Seed: 5,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Channels != 4 || len(mr.PerChannel) != 4 {
		t.Fatalf("channel bookkeeping wrong: %+v", mr)
	}
	if mr.Reads == 0 || mr.PerBit <= 0 {
		t.Fatal("no traffic simulated")
	}
	// Round-robin striping balances traffic across channels.
	if bal := mr.ChannelBalance(); bal > 1.3 {
		t.Errorf("channel imbalance %.2f, want ≤1.3", bal)
	}
	// Total transferred bits across channels equals the request count.
	var bits float64
	for _, st := range mr.PerChannel {
		bits += st.DataBits
	}
	if want := float64(mr.Reads+mr.Writes) * 32 * 8; math.Abs(bits-want) > 1e-6 {
		t.Errorf("bits accounted %.0f, want %.0f", bits, want)
	}
}

func TestMultiChannelScalesThroughput(t *testing.T) {
	p, _ := workload.ByName("resnet50")
	run := func(channels int) int64 {
		mr, err := RunAppMultiChannel(p, RunSpec{
			Policy:   memctrl.BaselineMTA,
			Accesses: 6000, Seed: 6,
		}, channels)
		if err != nil {
			t.Fatal(err)
		}
		return mr.Clocks
	}
	one := run(1)
	four := run(4)
	if four >= one {
		t.Errorf("4 channels (%d clocks) not faster than 1 (%d)", four, one)
	}
}

func TestMultiChannelSMOREsSavesEnergy(t *testing.T) {
	p, _ := workload.ByName("bfs")
	base, err := RunAppMultiChannel(p, RunSpec{
		Policy: memctrl.BaselineMTA, Accesses: 4000, Seed: 7,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := RunAppMultiChannel(p, RunSpec{
		Policy:   memctrl.SMOREs,
		Scheme:   core.Scheme{Specification: core.StaticCode, Detection: core.Exhaustive},
		Accesses: 4000, Seed: 7,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sm.PerBit >= base.PerBit {
		t.Errorf("multi-channel SMOREs (%.1f) not cheaper than baseline (%.1f)", sm.PerBit, base.PerBit)
	}
	if sm.Label != "smores(exhaustive/static)" {
		t.Errorf("label = %q", sm.Label)
	}
}

func TestMultiChannelValidation(t *testing.T) {
	p, _ := workload.ByName("bfs")
	if _, err := RunAppMultiChannel(p, RunSpec{Policy: memctrl.BaselineMTA, Accesses: 10}, 0); err == nil {
		t.Error("zero channels must error")
	}
	bad := p
	bad.MSHRs = 0
	if mr, err := RunAppMultiChannel(bad, RunSpec{Accesses: 10}, 2); err == nil {
		t.Error("invalid profile must error")
	} else if mr.Channels != 0 || mr.PerChannel != nil || mr.Reads != 0 {
		t.Errorf("error must come with the zero MultiResult, got %+v", mr)
	}
}

// ChannelBalance distinguishes its degenerate shapes with sentinels:
// NaN when there are no channels to compare, 1 when every channel is
// idle (trivially balanced), +Inf when a busy channel sits next to an
// idle one, and the plain hi/lo ratio otherwise.
func TestChannelBalanceSentinels(t *testing.T) {
	ch := func(bits ...float64) MultiResult {
		var mr MultiResult
		for _, b := range bits {
			mr.PerChannel = append(mr.PerChannel, bus.Stats{DataBits: b})
		}
		return mr
	}
	if bal := ch().ChannelBalance(); !math.IsNaN(bal) {
		t.Errorf("no channels: got %v, want NaN", bal)
	}
	if bal := ch(0, 0, 0).ChannelBalance(); !floats.Eq(bal, 1) {
		t.Errorf("all idle: got %v, want 1", bal)
	}
	if bal := ch(1024, 0).ChannelBalance(); !math.IsInf(bal, 1) {
		t.Errorf("idle next to busy: got %v, want +Inf", bal)
	}
	if bal := ch(3000, 1000, 1500).ChannelBalance(); !floats.Eq(bal, 3) {
		t.Errorf("skewed: got %v, want 3", bal)
	}
	if bal := ch(2048, 2048).ChannelBalance(); !floats.Eq(bal, 1) {
		t.Errorf("balanced: got %v, want 1", bal)
	}
}

// Both engines share channelSpec, which must give every channel a
// decorrelated fault seed without touching the caller's config.
func TestChannelSpecDecorrelatesFaultSeeds(t *testing.T) {
	base := RunSpec{Fault: &fault.Config{Model: fault.ModelUniform, Rate: 1e-3, Seed: 42}}
	seen := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		cs := channelSpec(base, i)
		if cs.Channel != i {
			t.Errorf("channel %d: Channel field = %d", i, cs.Channel)
		}
		if cs.Fault == base.Fault {
			t.Fatal("channelSpec must copy the fault config, not alias it")
		}
		if want := DecorrelateSeed(42, i); cs.Fault.Seed != want {
			t.Errorf("channel %d seed = %d, want %d", i, cs.Fault.Seed, want)
		}
		if seen[cs.Fault.Seed] {
			t.Errorf("channel %d reuses an earlier seed %d", i, cs.Fault.Seed)
		}
		seen[cs.Fault.Seed] = true
	}
	if base.Fault.Seed != 42 {
		t.Errorf("caller's config mutated: seed = %d", base.Fault.Seed)
	}
	if cs := channelSpec(RunSpec{}, 3); cs.Fault != nil || cs.Channel != 3 {
		t.Errorf("no-fault spec: %+v", cs)
	}
}
