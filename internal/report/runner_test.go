package report

import (
	"strings"
	"testing"

	"smores/internal/core"
	"smores/internal/memctrl"
	"smores/internal/stats"
	"smores/internal/workload"
)

func TestRunAppBaseline(t *testing.T) {
	p, _ := workload.ByName("bfs")
	r, err := RunApp(p, RunSpec{Policy: memctrl.BaselineMTA, Accesses: 3000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Reads == 0 || r.Clocks == 0 {
		t.Fatal("no traffic simulated")
	}
	if r.PerBit < 560 || r.PerBit > 950 {
		t.Errorf("baseline per-bit = %.1f, expected between MTA (585) and MTA+postamble (910)", r.PerBit)
	}
	if r.ReadGaps.Total() == 0 {
		t.Error("no gap samples")
	}
	if r.IdleFrequency <= 0 || r.IdleFrequency >= 1 {
		t.Errorf("idle frequency = %.2f", r.IdleFrequency)
	}
	if r.AvgReadLatency < 30 {
		t.Errorf("read latency = %.1f clocks, below RL", r.AvgReadLatency)
	}
}

func TestSameSeedReplaysIdenticalTraffic(t *testing.T) {
	p, _ := workload.ByName("lulesh")
	a, err := RunApp(p, RunSpec{Policy: memctrl.BaselineMTA, Accesses: 2000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunApp(p, RunSpec{
		Policy:   memctrl.SMOREs,
		Scheme:   core.Scheme{Specification: core.StaticCode, Detection: core.Exhaustive},
		Accesses: 2000, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Reads != b.Reads || a.Writes != b.Writes {
		t.Errorf("traffic diverged across policies: %d/%d vs %d/%d", a.Reads, a.Writes, b.Reads, b.Writes)
	}
	if b.PerBit >= a.PerBit {
		t.Errorf("SMOREs (%.1f) not cheaper than baseline (%.1f)", b.PerBit, a.PerBit)
	}
}

func TestPolicySpecs(t *testing.T) {
	specs := PolicySpecs(100, 1, false)
	if len(specs) != 5 {
		t.Fatalf("got %d specs", len(specs))
	}
	if specs[0].Policy != memctrl.BaselineMTA || specs[1].Policy != memctrl.OptimizedMTA {
		t.Error("baseline ordering wrong")
	}
	if specs[2].Scheme.Specification != core.VariableCode {
		t.Error("third spec should be variable")
	}
	if specs[4].Scheme.Detection != core.Conservative {
		t.Error("fifth spec should be conservative")
	}
}

// TestFleetCalibration runs the whole fleet at reduced scale and checks
// the headline reproduction targets with tolerant bands:
// Fig. 5's gap distribution and Table V's savings ordering.
func TestFleetCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet calibration is a long test")
	}
	const accesses = 6000
	base, err := RunFleet(RunSpec{Policy: memctrl.BaselineMTA, Accesses: accesses, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gaps, err := base.AggregateGaps(true)
	if err != nil {
		t.Fatal(err)
	}
	if g0 := gaps.Fraction(0); g0 < 0.45 || g0 > 0.70 {
		t.Errorf("read gap-0 fraction = %.2f, paper reports 0.592", g0)
	}
	if g1 := gaps.Fraction(1); g1 < 0.20 || g1 > 0.40 {
		t.Errorf("read gap-1 fraction = %.2f, paper reports 0.291", g1)
	}
	if tail := gaps.OverflowFraction(); tail < 0.02 || tail > 0.12 {
		t.Errorf("read >16 fraction = %.2f, paper reports 0.069", tail)
	}
	wgaps, err := base.AggregateGaps(false)
	if err != nil {
		t.Fatal(err)
	}
	if g0 := wgaps.Fraction(0); g0 < 0.40 || g0 > 0.75 {
		t.Errorf("write gap-0 fraction = %.2f, paper reports 0.591", g0)
	}

	variable, err := RunFleet(RunSpec{
		Policy:   memctrl.SMOREs,
		Scheme:   core.Scheme{Specification: core.VariableCode, Detection: core.Exhaustive},
		Accesses: accesses, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	static, err := RunFleet(RunSpec{
		Policy:   memctrl.SMOREs,
		Scheme:   core.Scheme{Specification: core.StaticCode, Detection: core.Exhaustive},
		Accesses: accesses, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := RunFleet(RunSpec{
		Policy:   memctrl.SMOREs,
		Scheme:   core.Scheme{Specification: core.StaticCode, Detection: core.Conservative},
		Accesses: accesses, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	b := base.MeanPerBit()
	sVar := 1 - variable.MeanPerBit()/b
	sStat := 1 - static.MeanPerBit()/b
	sCons := 1 - cons.MeanPerBit()/b
	t.Logf("Table V savings: variable %.1f%% (paper 28.2), static %.1f%% (26.8), conservative %.1f%% (25.2)",
		sVar*100, sStat*100, sCons*100)
	if !(sVar > sStat && sStat > sCons) {
		t.Errorf("savings ordering broken: %.3f, %.3f, %.3f", sVar, sStat, sCons)
	}
	if sVar < 0.22 || sVar > 0.40 {
		t.Errorf("variable saving %.1f%% outside the paper's band (28.2%%)", sVar*100)
	}
	if sCons < 0.15 || sCons > 0.35 {
		t.Errorf("conservative saving %.1f%% outside the paper's band (25.2%%)", sCons*100)
	}
}

func TestAggregateGapsMergesAllApps(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet run")
	}
	fr, err := RunFleet(RunSpec{Policy: memctrl.BaselineMTA, Accesses: 800, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Results) != 42 {
		t.Fatalf("fleet results = %d", len(fr.Results))
	}
	agg, err := fr.AggregateGaps(true)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range fr.Results {
		total += r.ReadGaps.Total()
	}
	if agg.Total() != total {
		t.Errorf("aggregate total %d != sum %d", agg.Total(), total)
	}
}

// TestRunFleetEmptyFleet pins the empty-fleet contract: an empty
// application list yields an empty result and no error on both the
// sequential and parallel paths (this used to panic indexing
// results[len(results)-1] for the label).
func TestRunFleetEmptyFleet(t *testing.T) {
	spec := RunSpec{Policy: memctrl.BaselineMTA, Accesses: 100, Seed: 1}
	for _, workers := range []int{1, 4} {
		fr, err := runFleet(nil, spec, FleetOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(fr.Results) != 0 || fr.Label != "" {
			t.Errorf("workers=%d: empty fleet produced results=%d label=%q",
				workers, len(fr.Results), fr.Label)
		}
		if agg, err := fr.AggregateGaps(true); err != nil || agg.Total() != 0 {
			t.Errorf("workers=%d: empty aggregate: total=%v err=%v", workers, agg.Total(), err)
		}
	}
}

// TestRunFleetPartialFailure pins the unified error contract of the
// sequential and parallel paths: the reported failure is the
// lowest-indexed one regardless of scheduling, successfully completed
// results are preserved in fleet order, and the label comes from the
// last successful result.
func TestRunFleetPartialFailure(t *testing.T) {
	good1, _ := workload.ByName("bfs")
	good2, _ := workload.ByName("lulesh")
	bad := good1
	bad.Name = "broken"
	bad.MSHRs = 0 // fails Profile.Validate inside RunApp
	fleet := []workload.Profile{good1, bad, good2}
	spec := RunSpec{Policy: memctrl.BaselineMTA, Accesses: 200, Seed: 3}
	for _, workers := range []int{1, 3} {
		fr, err := runFleet(fleet, spec, FleetOptions{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: expected error from app 1", workers)
		}
		if !strings.Contains(err.Error(), "fleet app 1") {
			t.Errorf("workers=%d: error %q does not name fleet app 1", workers, err)
		}
		for i, r := range fr.Results {
			if r.Reads == 0 {
				t.Errorf("workers=%d: partial result %d (%s) has no traffic", workers, i, r.App.Name)
			}
			if r.App.Name == "broken" {
				t.Errorf("workers=%d: failed app leaked into results", workers)
			}
		}
		if len(fr.Results) > 0 && fr.Label != fr.Results[len(fr.Results)-1].Label {
			t.Errorf("workers=%d: label %q not from last successful result", workers, fr.Label)
		}
	}
	// The parallel path preserves successes after the failure too.
	fr, _ := runFleet(fleet, spec, FleetOptions{Workers: 3})
	if len(fr.Results) != 2 {
		t.Errorf("parallel: preserved %d results, want 2 (apps 0 and 2)", len(fr.Results))
	}
}

// TestAggregateGapsNonDefaultBuckets pins the sizing fix: the aggregate
// takes its bucket count from the first result instead of a hard-coded
// 17, and a mismatch between results is an error, not a panic.
func TestAggregateGapsNonDefaultBuckets(t *testing.T) {
	mk := func(buckets int, samples ...int) *stats.Histogram {
		h := stats.NewHistogram(buckets)
		for _, s := range samples {
			h.Add(s)
		}
		return h
	}
	app := workload.Profile{Name: "synthetic"}
	fr := FleetResult{Results: []AppResult{
		{App: app, ReadGaps: mk(21, 0, 5, 20), WriteGaps: mk(21, 1)},
		{App: app, ReadGaps: mk(21, 20, 20), WriteGaps: mk(21)},
	}}
	agg, err := fr.AggregateGaps(true)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Buckets() != 21 {
		t.Errorf("aggregate has %d buckets, want 21 (sized from results)", agg.Buckets())
	}
	if agg.Total() != 5 || agg.Count(20) != 3 {
		t.Errorf("aggregate total=%d count(20)=%d, want 5 and 3", agg.Total(), agg.Count(20))
	}
	fr.Results[1].ReadGaps = mk(17, 2)
	if _, err := fr.AggregateGaps(true); err == nil {
		t.Error("bucket-count mismatch did not error")
	}
}
