package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"smores/internal/obs"
	"smores/internal/pam4"
)

// Machine-readable exports of the evaluation, for plotting the paper's
// figures with external tooling.

// ExportFleetCSV writes one row per application with the headline
// statistics of a fleet run.
func ExportFleetCSV(w io.Writer, fr FleetResult) error {
	cw := csv.NewWriter(w)
	header := []string{
		"app", "suite", "policy", "perbit_fj", "idle_frequency",
		"reads", "writes", "clocks", "avg_read_latency",
		"gap0_frac", "gap1_frac", "gap_gt16_frac",
		"mta_bursts", "sparse_bursts", "postambles",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range fr.Results {
		row := []string{
			r.App.Name, r.App.Suite, r.Label,
			f(r.PerBit), f(r.IdleFrequency),
			strconv.FormatInt(r.Reads, 10), strconv.FormatInt(r.Writes, 10),
			strconv.FormatInt(r.Clocks, 10), f(r.AvgReadLatency),
			f(r.ReadGaps.Fraction(0)), f(r.ReadGaps.Fraction(1)), f(r.ReadGaps.OverflowFraction()),
			strconv.FormatInt(r.Bus.MTABursts, 10), strconv.FormatInt(r.Bus.SparseBursts, 10),
			strconv.FormatInt(r.Bus.Postambles, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ExportGapsCSV writes the aggregate gap histogram (Figure 5) as
// (gap, read_fraction, write_fraction) rows, with the overflow tail
// (">N-1" for N buckets; ">16" at the default sizing) as the final row.
func ExportGapsCSV(w io.Writer, fr FleetResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"gap_clocks", "read_fraction", "write_fraction"}); err != nil {
		return err
	}
	reads, err := fr.AggregateGaps(true)
	if err != nil {
		return err
	}
	writes, err := fr.AggregateGaps(false)
	if err != nil {
		return err
	}
	buckets := reads.Buckets()
	for g := 0; g < buckets; g++ {
		if err := cw.Write([]string{
			strconv.Itoa(g), f(reads.Fraction(g)), f(writes.Fraction(g)),
		}); err != nil {
			return err
		}
	}
	if err := cw.Write([]string{">" + strconv.Itoa(buckets-1),
		f(reads.OverflowFraction()), f(writes.OverflowFraction())}); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// Table4JSON is the machine-readable Table IV.
type Table4JSON struct {
	Name       string  `json:"name"`
	WirePerBit float64 `json:"wire_fj_per_bit"`
	Logic      float64 `json:"logic_fj_per_bit"`
	Total      float64 `json:"total_fj_per_bit"`
	Paper      float64 `json:"paper_fj_per_bit,omitempty"`
}

// ExportTable4JSON writes Table IV as JSON.
func ExportTable4JSON(w io.Writer, m *pam4.EnergyModel) error {
	rows, err := table4Rows(m)
	if err != nil {
		return err
	}
	out := make([]Table4JSON, 0, len(rows))
	for _, r := range rows {
		out = append(out, Table4JSON{
			Name:       r.name,
			WirePerBit: r.wire + r.postamb,
			Logic:      r.logic,
			Total:      r.total(),
			Paper:      paperTable4[r.name],
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func f(v float64) string { return fmt.Sprintf("%.4f", v) }

// EvalAppJSON is one application row in the machine-readable evaluation.
type EvalAppJSON struct {
	App            string  `json:"app"`
	Suite          string  `json:"suite"`
	PerBitFJ       float64 `json:"perbit_fj"`
	IdleFrequency  float64 `json:"idle_frequency"`
	Reads          int64   `json:"reads"`
	Writes         int64   `json:"writes"`
	Clocks         int64   `json:"clocks"`
	AvgReadLatency float64 `json:"avg_read_latency"`
	MTABursts      int64   `json:"mta_bursts"`
	SparseBursts   int64   `json:"sparse_bursts"`
	Postambles     int64   `json:"postambles"`
}

// EvalFleetJSON is one fleet (policy × scheme) in the evaluation.
type EvalFleetJSON struct {
	Label        string        `json:"label"`
	MeanPerBitFJ float64       `json:"mean_perbit_fj"`
	Apps         []EvalAppJSON `json:"apps"`
}

// EvalWorkerJSON reports one fleet worker's completed-app counter
// (series smores_fleet_worker_apps_total).
type EvalWorkerJSON struct {
	Worker string `json:"worker"`
	Apps   int64  `json:"apps_completed"`
}

// EvalJSON is the machine-readable smores-eval output.
type EvalJSON struct {
	Accesses int64            `json:"accesses"`
	Seed     uint64           `json:"seed"`
	Fleets   []EvalFleetJSON  `json:"fleets"`
	Workers  []EvalWorkerJSON `json:"workers,omitempty"`
}

// MultiEvalAppJSON is one application row in the machine-readable
// multi-channel evaluation.
type MultiEvalAppJSON struct {
	App      string  `json:"app"`
	Suite    string  `json:"suite"`
	PerBitFJ float64 `json:"perbit_fj"`
	Reads    int64   `json:"reads"`
	Writes   int64   `json:"writes"`
	Clocks   int64   `json:"clocks"`
	// Balance is the max/min per-channel bit ratio. It is omitted when
	// not finite (no channels → NaN, an idle channel next to a busy one
	// → +Inf): encoding/json cannot represent either, and a sentinel
	// number would smuggle the ambiguity the sentinels exist to remove.
	Balance *float64 `json:"balance,omitempty"`
	// PerChannelBits is each channel's transferred data bits, in channel
	// order — the striping-skew evidence behind Balance.
	PerChannelBits []float64 `json:"per_channel_bits"`
}

// MultiEvalFleetJSON is one fleet (policy × scheme) of a multi-channel
// evaluation.
type MultiEvalFleetJSON struct {
	Label        string             `json:"label"`
	MeanPerBitFJ float64            `json:"mean_perbit_fj"`
	Apps         []MultiEvalAppJSON `json:"apps"`
}

// MultiEvalJSON is the machine-readable `smores-eval -channels N`
// output. Like CampaignJSON it contains no timestamps or host data, so
// a fixed seed yields byte-identical bytes at every worker count (the
// fleet determinism test pins this).
type MultiEvalJSON struct {
	Channels int                  `json:"channels"`
	Accesses int64                `json:"accesses"`
	Seed     uint64               `json:"seed"`
	Fleets   []MultiEvalFleetJSON `json:"fleets"`
}

// ExportMultiEvalJSON writes the multi-channel evaluation as indented
// JSON, one fleet per scheme with per-app rows.
func ExportMultiEvalJSON(w io.Writer, mfrs []MultiFleetResult) error {
	var out MultiEvalJSON
	if len(mfrs) > 0 {
		out.Channels = mfrs[0].Channels
		out.Accesses = mfrs[0].Spec.Accesses
		out.Seed = mfrs[0].Spec.Seed
	}
	for _, fr := range mfrs {
		fj := MultiEvalFleetJSON{Label: fr.Label, MeanPerBitFJ: fr.MeanPerBit()}
		for _, r := range fr.Results {
			row := MultiEvalAppJSON{
				App: r.App.Name, Suite: r.App.Suite,
				PerBitFJ: r.PerBit,
				Reads:    r.Reads, Writes: r.Writes, Clocks: r.Clocks,
			}
			if bal := r.ChannelBalance(); !math.IsNaN(bal) && !math.IsInf(bal, 0) {
				row.Balance = &bal
			}
			for _, st := range r.PerChannel {
				row.PerChannelBits = append(row.PerChannelBits, st.DataBits)
			}
			fj.Apps = append(fj.Apps, row)
		}
		out.Fleets = append(out.Fleets, fj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ExportEvalJSON writes the full evaluation — every fleet's per-app
// results plus, when a registry observed the run, the per-worker
// completion counters — as indented JSON.
func ExportEvalJSON(w io.Writer, frs []FleetResult, reg *obs.Registry) error {
	var out EvalJSON
	if len(frs) > 0 {
		out.Accesses = frs[0].Spec.Accesses
		out.Seed = frs[0].Spec.Seed
	}
	for _, fr := range frs {
		fj := EvalFleetJSON{Label: fr.Label, MeanPerBitFJ: fr.MeanPerBit()}
		for _, r := range fr.Results {
			fj.Apps = append(fj.Apps, EvalAppJSON{
				App: r.App.Name, Suite: r.App.Suite,
				PerBitFJ: r.PerBit, IdleFrequency: r.IdleFrequency,
				Reads: r.Reads, Writes: r.Writes, Clocks: r.Clocks,
				AvgReadLatency: r.AvgReadLatency,
				MTABursts:      r.Bus.MTABursts, SparseBursts: r.Bus.SparseBursts,
				Postambles: r.Bus.Postambles,
			})
		}
		out.Fleets = append(out.Fleets, fj)
	}
	for _, fam := range reg.Gather() {
		if fam.Name != "smores_fleet_worker_apps_total" {
			continue
		}
		for _, s := range fam.Series {
			wj := EvalWorkerJSON{Apps: int64(s.Value)}
			for _, l := range s.Labels {
				if l.Key == "worker" {
					wj.Worker = l.Value
				}
			}
			out.Workers = append(out.Workers, wj)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
