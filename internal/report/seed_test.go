package report

import "testing"

// The decorrelation stride is a published contract: campaign JSON,
// fleet results, and fault sweeps from earlier releases were produced
// with these exact formulas, and reproducibility promises pin them.
// These tests compare against independently written-out arithmetic so a
// refactor of the helper cannot silently reshuffle every seed.
func TestDecorrelateSeedPinned(t *testing.T) {
	cases := []struct {
		base uint64
		i    int
		want uint64
	}{
		{0, 0, 0},
		{0, 1, 1000003},
		{0, 7, 7000021},
		{42, 0, 42},
		{42, 3, 42 + 3*1000003},
		{1 << 60, 5, 1<<60 + 5*1000003},
	}
	for _, c := range cases {
		if got := DecorrelateSeed(c.base, c.i); got != c.want {
			t.Errorf("DecorrelateSeed(%d, %d) = %d, want %d", c.base, c.i, got, c.want)
		}
	}
}

// campaignJobSeed must keep producing the historical inline formula
// seed + pi*69061 + ai*1000003 + 1 — byte-identical campaign JSON
// across releases depends on it (TestCampaignReproducible pins the
// worker-count half of that promise).
func TestCampaignJobSeedPinned(t *testing.T) {
	cases := []struct {
		seed   uint64
		pi, ai int
		want   uint64
	}{
		{0, 0, 0, 1},
		{0, 1, 0, 69061 + 1},
		{0, 0, 1, 1000003 + 1},
		{11, 2, 3, 11 + 2*69061 + 3*1000003 + 1},
		{977, 5, 7, 977 + 5*69061 + 7*1000003 + 1},
	}
	for _, c := range cases {
		if got := campaignJobSeed(c.seed, c.pi, c.ai); got != c.want {
			t.Errorf("campaignJobSeed(%d, %d, %d) = %d, want %d", c.seed, c.pi, c.ai, got, c.want)
		}
	}
}

// appSeed rides the same helper; fleet position i maps to seed+i·stride.
func TestAppSeedUsesSharedStride(t *testing.T) {
	for i := 0; i < 5; i++ {
		if got, want := appSeed(9, i), DecorrelateSeed(9, i); got != want {
			t.Errorf("appSeed(9, %d) = %d, want %d", i, got, want)
		}
	}
}
