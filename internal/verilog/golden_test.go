package verilog

import (
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenLevelShifter pins the emitted Verilog of a small module so
// accidental emission changes are visible in review. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/verilog -run Golden.
func TestGoldenLevelShifter(t *testing.T) {
	got := LevelShifter().Emit()
	path := filepath.Join("testdata", "smores_level_shift.v.golden")
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with UPDATE_GOLDEN=1): %v", err)
	}
	if string(want) != got {
		t.Errorf("emission drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
