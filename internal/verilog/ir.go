// Package verilog generates synthesizable Verilog for the paper's
// encoder and decoder hardware — the artifacts the authors pushed through
// the Synopsys flow for Figure 7 — from the same codebooks the Go codecs
// use. Modules are built as a combinational expression IR that can be
// both emitted as Verilog text and evaluated directly, so every emitted
// design is exhaustively verified against its Go golden model.
package verilog

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is a combinational expression with a fixed bit width.
type Expr interface {
	// Width returns the expression's width in bits.
	Width() int
	// Eval computes the value given input port values (by name).
	Eval(env map[string]uint64) uint64
	// Emit renders the Verilog source for the expression.
	Emit() string
}

func mask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(width) - 1
}

// Port references a module input or named wire.
type Port struct {
	Name string
	Bits int
}

// Width implements Expr.
func (p Port) Width() int { return p.Bits }

// Eval implements Expr.
func (p Port) Eval(env map[string]uint64) uint64 {
	v, ok := env[p.Name]
	if !ok {
		panic("verilog: unbound identifier " + p.Name)
	}
	return v & mask(p.Bits)
}

// Emit implements Expr.
func (p Port) Emit() string { return p.Name }

// Const is a literal.
type Const struct {
	Value uint64
	Bits  int
}

// Width implements Expr.
func (c Const) Width() int { return c.Bits }

// Eval implements Expr.
func (c Const) Eval(map[string]uint64) uint64 { return c.Value & mask(c.Bits) }

// Emit implements Expr.
func (c Const) Emit() string { return fmt.Sprintf("%d'd%d", c.Bits, c.Value) }

// Slice selects bits [Lo, Lo+Bits) of an expression.
type Slice struct {
	X    Expr
	Lo   int
	Bits int
}

// Width implements Expr.
func (s Slice) Width() int { return s.Bits }

// Eval implements Expr.
func (s Slice) Eval(env map[string]uint64) uint64 {
	return (s.X.Eval(env) >> uint(s.Lo)) & mask(s.Bits)
}

// Emit implements Expr.
func (s Slice) Emit() string {
	if s.Bits == 1 {
		return fmt.Sprintf("%s[%d]", s.X.Emit(), s.Lo)
	}
	return fmt.Sprintf("%s[%d:%d]", s.X.Emit(), s.Lo+s.Bits-1, s.Lo)
}

// Concat joins expressions, first argument most significant (Verilog
// {a, b} order).
type Concat struct {
	Parts []Expr
}

// Width implements Expr.
func (c Concat) Width() int {
	w := 0
	for _, p := range c.Parts {
		w += p.Width()
	}
	return w
}

// Eval implements Expr.
func (c Concat) Eval(env map[string]uint64) uint64 {
	var v uint64
	for _, p := range c.Parts {
		v = v<<uint(p.Width()) | p.Eval(env)
	}
	return v
}

// Emit implements Expr.
func (c Concat) Emit() string {
	parts := make([]string, len(c.Parts))
	for i, p := range c.Parts {
		parts[i] = p.Emit()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Op is a binary operator.
type Op string

// Supported binary operators.
const (
	OpAnd Op = "&"
	OpOr  Op = "|"
	OpXor Op = "^"
	OpAdd Op = "+"
	OpEq  Op = "=="
	OpGt  Op = ">"
)

// Binary applies Op to two operands. Comparison results are 1 bit;
// arithmetic/bitwise results take the wider operand's width.
type Binary struct {
	Op   Op
	A, B Expr
}

// Width implements Expr.
func (b Binary) Width() int {
	switch b.Op {
	case OpEq, OpGt:
		return 1
	}
	if b.A.Width() > b.B.Width() {
		return b.A.Width()
	}
	return b.B.Width()
}

// Eval implements Expr.
func (b Binary) Eval(env map[string]uint64) uint64 {
	x, y := b.A.Eval(env), b.B.Eval(env)
	switch b.Op {
	case OpAnd:
		return (x & y) & mask(b.Width())
	case OpOr:
		return (x | y) & mask(b.Width())
	case OpXor:
		return (x ^ y) & mask(b.Width())
	case OpAdd:
		return (x + y) & mask(b.Width())
	case OpEq:
		if x == y {
			return 1
		}
		return 0
	case OpGt:
		if x > y {
			return 1
		}
		return 0
	default:
		panic("verilog: unknown operator " + string(b.Op))
	}
}

// Emit implements Expr.
func (b Binary) Emit() string {
	return fmt.Sprintf("(%s %s %s)", b.A.Emit(), b.Op, b.B.Emit())
}

// Not is bitwise complement.
type Not struct{ X Expr }

// Width implements Expr.
func (n Not) Width() int { return n.X.Width() }

// Eval implements Expr.
func (n Not) Eval(env map[string]uint64) uint64 { return ^n.X.Eval(env) & mask(n.Width()) }

// Emit implements Expr.
func (n Not) Emit() string { return "(~" + n.X.Emit() + ")" }

// Mux is sel ? A : B.
type Mux struct {
	Sel  Expr // 1 bit
	A, B Expr
}

// Width implements Expr.
func (m Mux) Width() int { return m.A.Width() }

// Eval implements Expr.
func (m Mux) Eval(env map[string]uint64) uint64 {
	if m.Sel.Eval(env) != 0 {
		return m.A.Eval(env) & mask(m.Width())
	}
	return m.B.Eval(env) & mask(m.Width())
}

// Emit implements Expr.
func (m Mux) Emit() string {
	return fmt.Sprintf("(%s ? %s : %s)", m.Sel.Emit(), m.A.Emit(), m.B.Emit())
}

// Lookup is a full-case ROM: a case statement over Sel. Missing entries
// take Default.
type Lookup struct {
	Sel     Expr
	Table   map[uint64]uint64
	Default uint64
	Bits    int
}

// Width implements Expr.
func (l Lookup) Width() int { return l.Bits }

// Eval implements Expr.
func (l Lookup) Eval(env map[string]uint64) uint64 {
	if v, ok := l.Table[l.Sel.Eval(env)]; ok {
		return v & mask(l.Bits)
	}
	return l.Default & mask(l.Bits)
}

// Emit is unused for Lookup: lookups are emitted as always-blocks by the
// module writer and referenced through their target wire.
func (l Lookup) Emit() string { panic("verilog: Lookup must be assigned to a named wire") }

// sortedKeys returns the lookup's case labels in ascending order for
// stable emission.
func (l Lookup) sortedKeys() []uint64 {
	keys := make([]uint64, 0, len(l.Table))
	for k := range l.Table {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
