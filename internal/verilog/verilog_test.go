package verilog

import (
	"strings"
	"testing"

	"smores/internal/codec"
	"smores/internal/core"
	"smores/internal/mta"
	"smores/internal/pam4"
)

func books(t *testing.T) []*codec.Codebook {
	t.Helper()
	fam, err := core.NewFamily(pam4.DefaultEnergyModel(), core.DefaultFamilyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var out []*codec.Codebook
	for _, n := range fam.Lengths() {
		out = append(out, fam.ByLength(n).Book())
	}
	return out
}

// TestSparseEncoderEquivalence checks every generated sparse encoder
// against the Go codebook on all 16 inputs.
func TestSparseEncoderEquivalence(t *testing.T) {
	for _, book := range books(t) {
		m := SparseEncoder(book)
		for v := uint64(0); v < 16; v++ {
			out := m.Eval(map[string]uint64{"data": v})
			want := uint64(book.Encode(uint8(v)).Packed())
			if out["symbols"] != want {
				t.Fatalf("%s: data %d → %#x, want %#x", m.Name, v, out["symbols"], want)
			}
		}
	}
}

// TestSparseDecoderEquivalence checks the decoders exhaustively over the
// full symbol space (valid and invalid sequences).
func TestSparseDecoderEquivalence(t *testing.T) {
	for _, book := range books(t) {
		spec := book.Spec()
		if spec.OutputSymbols > 7 {
			continue // 4b8s covered by the sampled test below
		}
		m := SparseDecoder(book)
		for s := uint64(0); s < 1<<uint(2*spec.OutputSymbols); s++ {
			out := m.Eval(map[string]uint64{"symbols": s})
			wantV, wantOK := book.Decode(pam4.SeqFromPacked(uint32(s), spec.OutputSymbols))
			if (out["valid"] == 1) != wantOK {
				t.Fatalf("%s: symbols %#x valid=%d, want %v", m.Name, s, out["valid"], wantOK)
			}
			if wantOK && out["data"] != uint64(wantV) {
				t.Fatalf("%s: symbols %#x → %d, want %d", m.Name, s, out["data"], wantV)
			}
		}
	}
}

func TestSparseDecoder8SampledEquivalence(t *testing.T) {
	book := books(t)[5] // 4b8s
	if book.Spec().OutputSymbols != 8 {
		t.Fatal("unexpected family ordering")
	}
	m := SparseDecoder(book)
	// All 16 codewords plus a stride of foreign sequences.
	for v := 0; v < 16; v++ {
		s := uint64(book.Encode(uint8(v)).Packed())
		out := m.Eval(map[string]uint64{"symbols": s})
		if out["valid"] != 1 || out["data"] != uint64(v) {
			t.Fatalf("codeword %d misdecoded", v)
		}
	}
	for s := uint64(0); s < 1<<16; s += 97 {
		out := m.Eval(map[string]uint64{"symbols": s})
		_, wantOK := book.Decode(pam4.SeqFromPacked(uint32(s), 8))
		if (out["valid"] == 1) != wantOK {
			t.Fatalf("symbols %#x validity mismatch", s)
		}
	}
}

// TestMTAEquivalence checks the MTA wire encoder/decoder pair against
// the Go codec for every data value and both seam states.
func TestMTAEquivalence(t *testing.T) {
	c := mta.New(pam4.DefaultEnergyModel())
	enc := MTAEncoder(c)
	dec := MTADecoder(c)
	for _, prev := range []pam4.Level{pam4.L0, pam4.L3} {
		inv := uint64(0)
		if prev == pam4.L3 {
			inv = 1
		}
		for v := uint64(0); v < 128; v++ {
			seq, _ := c.EncodeWire(uint8(v), prev)
			got := enc.Eval(map[string]uint64{"data": v, "invert": inv})
			if got["symbols"] != uint64(seq.Packed()) {
				t.Fatalf("encoder: v=%d inv=%d → %#x, want %#x", v, inv, got["symbols"], seq.Packed())
			}
			back := dec.Eval(map[string]uint64{"symbols": got["symbols"], "invert": inv})
			if back["valid"] != 1 || back["data"] != v {
				t.Fatalf("decoder: v=%d inv=%d → %d (valid=%d)", v, inv, back["data"], back["valid"])
			}
		}
	}
	// Foreign sequences must be flagged invalid (exhaustive).
	for s := uint64(0); s < 256; s++ {
		for inv := uint64(0); inv < 2; inv++ {
			prev := pam4.L0
			if inv == 1 {
				prev = pam4.L3
			}
			upright := pam4.SeqFromPacked(uint32(s), 4)
			_, wantOK := c.DecodeWire(upright, prev)
			got := dec.Eval(map[string]uint64{"symbols": s, "invert": inv})
			if (got["valid"] == 1) != wantOK {
				t.Fatalf("decoder validity mismatch at %#x inv=%d", s, inv)
			}
		}
	}
}

// TestDBIColumnEquivalence checks the DBI unit against core.ApplyDBISwap
// over every 3-level column (3^8 = 6561 cases).
func TestDBIColumnEquivalence(t *testing.T) {
	m := DBIColumn()
	var col mta.Column
	var rec func(w int)
	cases := 0
	rec = func(w int) {
		if w == mta.GroupDataWires {
			cases++
			var packed uint64
			for i := 0; i < mta.GroupDataWires; i++ {
				packed |= uint64(col[i]) << uint(2*i)
			}
			out := m.Eval(map[string]uint64{"d": packed})
			want := core.ApplyDBISwap(col)
			var wantQ uint64
			for i := 0; i < mta.GroupDataWires; i++ {
				wantQ |= uint64(want[i]) << uint(2*i)
			}
			if out["q"] != wantQ || out["dbi"] != uint64(want[mta.DBIWire]) {
				t.Fatalf("column %#x: q=%#x dbi=%d, want %#x/%d",
					packed, out["q"], out["dbi"], wantQ, want[mta.DBIWire])
			}
			return
		}
		for l := pam4.L0; l <= pam4.L2; l++ {
			col[w] = l
			rec(w + 1)
		}
	}
	rec(0)
	if cases != 6561 {
		t.Fatalf("covered %d cases, want 6561", cases)
	}
}

func TestLevelShifterEquivalence(t *testing.T) {
	up := LevelShifter()
	down := LevelUnshifter()
	for sym := uint64(0); sym < 4; sym++ {
		for prev := uint64(0); prev < 4; prev++ {
			got := up.Eval(map[string]uint64{"sym": sym, "prev": prev})["out"]
			want := pam4.Level(sym)
			if prev == uint64(pam4.L3) {
				want = want.ShiftUp()
			}
			if got != uint64(want) {
				t.Fatalf("shift sym=%d prev=%d → %d, want %d", sym, prev, got, want)
			}
			back := down.Eval(map[string]uint64{"sym": got, "prev": prev})["out"]
			// Round trip holds for all reachable symbols (≤L2 pre-shift).
			if sym <= 2 && back != sym {
				t.Fatalf("unshift sym=%d prev=%d → %d", sym, prev, back)
			}
		}
	}
}

func TestEmitWellFormed(t *testing.T) {
	c := mta.New(pam4.DefaultEnergyModel())
	mods := StandardSet(c, books(t))
	if len(mods) != 5+2*6 {
		t.Fatalf("standard set has %d modules", len(mods))
	}
	names := map[string]bool{}
	for _, m := range mods {
		src := m.Emit()
		if names[m.Name] {
			t.Errorf("duplicate module name %s", m.Name)
		}
		names[m.Name] = true
		for _, want := range []string{"module " + m.Name, "endmodule", "input", "output"} {
			if !strings.Contains(src, want) {
				t.Errorf("%s: emitted source missing %q:\n%s", m.Name, want, src)
			}
		}
		// Balanced case/endcase and begin/end.
		if strings.Count(src, "case (") != strings.Count(src, "endcase") {
			t.Errorf("%s: unbalanced case blocks", m.Name)
		}
		if strings.Contains(src, "%!") {
			t.Errorf("%s: formatting artifact in output", m.Name)
		}
	}
	// Spot-check a deterministic fragment of the 4b3s encoder.
	enc := SparseEncoder(books(t)[0])
	src := enc.Emit()
	if !strings.Contains(src, "case (data)") || !strings.Contains(src, "4'd0:") {
		t.Errorf("sparse encoder emission malformed:\n%s", src)
	}
	// Emission is deterministic.
	if src != SparseEncoder(books(t)[0]).Emit() {
		t.Error("emission not deterministic")
	}
}

func TestIRBasics(t *testing.T) {
	m := NewModule("t", "c")
	a := m.Input("a", 4)
	b := m.Input("b", 4)
	sum := m.Wire("sum", Binary{Op: OpAdd, A: a, B: b})
	hi := m.Wire("hi", Slice{X: sum, Lo: 2, Bits: 2})
	cat := m.Wire("cat", Concat{Parts: []Expr{hi, Const{Value: 1, Bits: 1}}})
	m.Output("o", cat)
	out := m.Eval(map[string]uint64{"a": 7, "b": 6})
	// sum = 13 (0b1101), hi = 0b11, cat = 0b111.
	if out["o"] != 7 {
		t.Errorf("o = %d, want 7", out["o"])
	}
	src := m.Emit()
	if !strings.Contains(src, "wire [1:0] hi") || !strings.Contains(src, "// c") {
		t.Errorf("emission missing declarations:\n%s", src)
	}
	// Width/overflow behavior.
	if got := (Binary{Op: OpAdd, A: Const{15, 4}, B: Const{1, 4}}).Eval(nil); got != 0 {
		t.Errorf("4-bit add overflow = %d", got)
	}
	if got := (Not{X: Const{0, 2}}).Eval(nil); got != 3 {
		t.Errorf("2-bit not = %d", got)
	}
	if got := (Mux{Sel: Const{0, 1}, A: Const{1, 2}, B: Const{2, 2}}).Eval(nil); got != 2 {
		t.Errorf("mux = %d", got)
	}
	if (Binary{Op: OpGt, A: Const{3, 4}, B: Const{2, 4}}).Eval(nil) != 1 {
		t.Error("gt broken")
	}
	if (Binary{Op: OpEq, A: Const{3, 4}, B: Const{2, 4}}).Width() != 1 {
		t.Error("comparison width should be 1")
	}
}

func TestDuplicateWirePanics(t *testing.T) {
	m := NewModule("d", "")
	m.Wire("w", Const{1, 1})
	defer func() {
		if recover() == nil {
			t.Error("duplicate wire must panic")
		}
	}()
	m.Wire("w", Const{0, 1})
}

func TestMissingInputPanics(t *testing.T) {
	m := NewModule("mi", "")
	a := m.Input("a", 2)
	m.Output("o", m.Wire("w", Not{X: a}))
	defer func() {
		if recover() == nil {
			t.Error("missing input must panic")
		}
	}()
	m.Eval(map[string]uint64{})
}
