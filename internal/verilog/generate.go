package verilog

import (
	"fmt"

	"smores/internal/codec"
	"smores/internal/mta"
	"smores/internal/pam4"
)

// Symbol packing convention for all generated modules: symbol i of a
// sequence occupies bits [2i+1:2i] of the symbol bus (first symbol on the
// wire in the least-significant position), matching pam4.Seq's packing.

// SparseEncoder generates the 4-bit→N-symbol encoder for a codebook.
func SparseEncoder(book *codec.Codebook) *Module {
	spec := book.Spec()
	m := NewModule(
		fmt.Sprintf("smores_enc_%db%ds_%d", spec.InputBits, spec.OutputSymbols, spec.Levels),
		fmt.Sprintf("SMOREs %s encoder: %d-bit data to %d PAM4 symbols (2 bits each,\nsymbol 0 in the low bits). Generated from the Go codebook.",
			spec.Name(), spec.InputBits, spec.OutputSymbols),
	)
	data := m.Input("data", spec.InputBits)
	table := make(map[uint64]uint64, spec.Values())
	for v, seq := range book.Codes() {
		table[uint64(v)] = uint64(seq.Packed())
	}
	lut := m.Wire("symbols_q", Lookup{Sel: data, Table: table, Bits: 2 * spec.OutputSymbols})
	m.Output("symbols", lut)
	return m
}

// SparseDecoder generates the matching N-symbol→4-bit decoder with a
// valid flag (low for sequences outside the codebook).
func SparseDecoder(book *codec.Codebook) *Module {
	spec := book.Spec()
	m := NewModule(
		fmt.Sprintf("smores_dec_%db%ds_%d", spec.InputBits, spec.OutputSymbols, spec.Levels),
		fmt.Sprintf("SMOREs %s decoder: %d PAM4 symbols back to %d data bits.\nvalid goes low for sequences outside the codebook.",
			spec.Name(), spec.OutputSymbols, spec.InputBits),
	)
	symbols := m.Input("symbols", 2*spec.OutputSymbols)
	// Output packs {valid, data}.
	table := make(map[uint64]uint64, spec.Values())
	for v, seq := range book.Codes() {
		table[uint64(seq.Packed())] = 1<<uint(spec.InputBits) | uint64(v)
	}
	lut := m.Wire("decoded_q", Lookup{Sel: symbols, Table: table, Bits: spec.InputBits + 1})
	m.Output("data", m.Wire("data_w", Slice{X: lut, Lo: 0, Bits: spec.InputBits}))
	m.Output("valid", m.Wire("valid_w", Slice{X: lut, Lo: spec.InputBits, Bits: 1}))
	return m
}

// MTAEncoder generates the per-wire 7-bit→4-symbol MTA encoder with the
// conditional sequence inversion (asserted when the wire's previous
// transmitted symbol was L3). In the natural bit mapping, inverting a
// level (l → 3−l) is a bitwise complement.
func MTAEncoder(c *mta.Codec) *Module {
	m := NewModule("mta_enc_wire",
		"GDDR6X MTA per-wire encoder: 7 data bits to 4 PAM4 symbols with the\nL3-seam inversion stage. Generated from the canonical 128-entry table.")
	data := m.Input("data", 7)
	invert := m.Input("invert", 1)
	table := make(map[uint64]uint64, mta.TableSize)
	for v, seq := range c.Table() {
		table[uint64(v)] = uint64(seq.Packed())
	}
	lut := m.Wire("upright_q", Lookup{Sel: data, Table: table, Bits: 8})
	inv := m.Wire("inverted_w", Not{X: lut})
	out := m.Wire("symbols_w", Mux{Sel: invert, A: inv, B: lut})
	m.Output("symbols", out)
	return m
}

// MTADecoder generates the per-wire MTA decoder (un-invert, then reverse
// the table; valid goes low for the 128 codes' complement space).
func MTADecoder(c *mta.Codec) *Module {
	m := NewModule("mta_dec_wire",
		"GDDR6X MTA per-wire decoder: 4 PAM4 symbols back to 7 data bits.\ninvert mirrors the encoder's seam state; valid flags table membership.")
	symbols := m.Input("symbols", 8)
	invert := m.Input("invert", 1)
	upright := m.Wire("upright_w", Mux{Sel: invert, A: Not{X: symbols}, B: symbols})
	table := make(map[uint64]uint64, mta.TableSize)
	for v, seq := range c.Table() {
		table[uint64(seq.Packed())] = 1<<7 | uint64(v)
	}
	lut := m.Wire("decoded_q", Lookup{Sel: upright, Table: table, Bits: 8})
	m.Output("data", m.Wire("data_w", Slice{X: lut, Lo: 0, Bits: 7}))
	m.Output("valid", m.Wire("valid_w", Slice{X: lut, Lo: 7, Bits: 1}))
	return m
}

// DBIColumn generates the restricted-DBI level-swap unit for one UI
// column: eight 2-bit symbols in, swapped symbols plus the 2-bit DBI
// metadata symbol out. Swap L0↔L1 when more than four wires carry L1,
// else L0↔L2 when more than four carry L2.
func DBIColumn() *Module {
	m := NewModule("smores_dbi_column",
		"SMOREs restricted DBI for one UI column across eight data wires.\nd packs wire w's symbol at bits [2w+1:2w]; dbi is the metadata symbol.")
	d := m.Input("d", 16)

	sym := func(w int) Expr { return Slice{X: d, Lo: 2 * w, Bits: 2} }
	countOf := func(level uint64, name string) Port {
		var sum Expr = Const{Value: 0, Bits: 4}
		for w := 0; w < 8; w++ {
			eq := Binary{Op: OpEq, A: sym(w), B: Const{Value: level, Bits: 2}}
			sum = Binary{Op: OpAdd, A: sum, B: Concat{Parts: []Expr{Const{Value: 0, Bits: 3}, eq}}}
		}
		return m.Wire(name, sum)
	}
	n1 := countOf(1, "count_l1")
	n2 := countOf(2, "count_l2")
	sel1 := m.Wire("swap_l1", Binary{Op: OpGt, A: n1, B: Const{Value: 4, Bits: 4}})
	sel2Raw := Binary{Op: OpGt, A: n2, B: Const{Value: 4, Bits: 4}}
	// L1 is tested first; both majorities cannot hold at once, but the
	// priority keeps the logic and its Go model identical.
	sel2 := m.Wire("swap_l2", Binary{Op: OpAnd, A: Not{X: Port{Name: sel1.Name, Bits: 1}}, B: sel2Raw})

	var outSyms []Expr
	for w := 7; w >= 0; w-- { // Concat is MSB-first
		s := sym(w)
		swap01 := Mux{
			Sel: Binary{Op: OpEq, A: s, B: Const{Value: 0, Bits: 2}},
			A:   Const{Value: 1, Bits: 2},
			B:   Mux{Sel: Binary{Op: OpEq, A: s, B: Const{Value: 1, Bits: 2}}, A: Const{Value: 0, Bits: 2}, B: s},
		}
		swap02 := Mux{
			Sel: Binary{Op: OpEq, A: s, B: Const{Value: 0, Bits: 2}},
			A:   Const{Value: 2, Bits: 2},
			B:   Mux{Sel: Binary{Op: OpEq, A: s, B: Const{Value: 2, Bits: 2}}, A: Const{Value: 0, Bits: 2}, B: s},
		}
		outSyms = append(outSyms, Mux{Sel: sel1, A: swap01, B: Mux{Sel: sel2, A: swap02, B: s}})
	}
	q := m.Wire("q_w", Concat{Parts: outSyms})
	dbi := m.Wire("dbi_w", Mux{
		Sel: sel1, A: Const{Value: 1, Bits: 2},
		B: Mux{Sel: sel2, A: Const{Value: 2, Bits: 2}, B: Const{Value: 0, Bits: 2}},
	})
	m.Output("q", q)
	m.Output("dbi", dbi)
	return m
}

// LevelShifter generates the per-wire seam level shifter: a symbol
// following an L3 is transmitted one level higher.
func LevelShifter() *Module {
	m := NewModule("smores_level_shift",
		"SMOREs per-wire level shifter: shift the outgoing symbol up one\nlevel when the previously transmitted symbol was L3.")
	sym := m.Input("sym", 2)
	prev := m.Input("prev", 2)
	// Saturating increment matches the Go model; sparse symbols never
	// exceed L2 before shifting, so saturation is a defensive bound.
	atMax := Binary{Op: OpEq, A: sym, B: Const{Value: 3, Bits: 2}}
	shifted := Mux{Sel: atMax, A: Const{Value: 3, Bits: 2},
		B: Binary{Op: OpAdd, A: sym, B: Const{Value: 1, Bits: 2}}}
	wasL3 := Binary{Op: OpEq, A: prev, B: Const{Value: uint64(pam4.L3), Bits: 2}}
	out := m.Wire("out_w", Mux{Sel: wasL3, A: shifted, B: sym})
	m.Output("out", out)
	return m
}

// LevelUnshifter generates the receiver side: subtract one level from any
// symbol that followed an L3.
func LevelUnshifter() *Module {
	m := NewModule("smores_level_unshift",
		"SMOREs per-wire level unshifter (receiver): subtract one level from\nany symbol received after an L3.")
	sym := m.Input("sym", 2)
	prev := m.Input("prev", 2)
	atMin := Binary{Op: OpEq, A: sym, B: Const{Value: 0, Bits: 2}}
	down := Mux{Sel: atMin, A: Const{Value: 0, Bits: 2},
		B: Binary{Op: OpAdd, A: sym, B: Const{Value: 3, Bits: 2}}} // −1, saturating
	wasL3 := Binary{Op: OpEq, A: prev, B: Const{Value: uint64(pam4.L3), Bits: 2}}
	out := m.Wire("out_w", Mux{Sel: wasL3, A: down, B: sym})
	m.Output("out", out)
	return m
}

// StandardSet generates the full family the paper synthesizes: the MTA
// encoder/decoder pair and the sparse encoder/decoder pairs for every
// length in the family, plus the DBI column and level-shifter blocks.
func StandardSet(c *mta.Codec, books []*codec.Codebook) []*Module {
	mods := []*Module{
		MTAEncoder(c), MTADecoder(c),
		DBIColumn(), LevelShifter(), LevelUnshifter(),
	}
	for _, b := range books {
		mods = append(mods, SparseEncoder(b), SparseDecoder(b))
	}
	return mods
}
