package verilog

import (
	"fmt"
	"strings"
)

// Module is a purely combinational design: inputs, named wires defined by
// expressions, and outputs selected from those wires (or inputs).
type Module struct {
	Name    string
	Comment string
	inputs  []Port
	outputs []Port
	// wires are evaluated in definition order; later wires may reference
	// earlier ones.
	wireOrder []string
	wires     map[string]Expr
	outExpr   map[string]string // output name → wire/input name
}

// NewModule starts a module definition.
func NewModule(name, comment string) *Module {
	return &Module{
		Name:    name,
		Comment: comment,
		wires:   make(map[string]Expr),
		outExpr: make(map[string]string),
	}
}

// Input declares an input port and returns a reference to it.
func (m *Module) Input(name string, bits int) Port {
	p := Port{Name: name, Bits: bits}
	m.inputs = append(m.inputs, p)
	return p
}

// Wire defines a named intermediate signal and returns a reference.
func (m *Module) Wire(name string, e Expr) Port {
	if _, dup := m.wires[name]; dup {
		panic("verilog: duplicate wire " + name)
	}
	m.wires[name] = e
	m.wireOrder = append(m.wireOrder, name)
	return Port{Name: name, Bits: e.Width()}
}

// Output declares an output port driven by the named wire or input.
func (m *Module) Output(name string, src Port) {
	m.outputs = append(m.outputs, Port{Name: name, Bits: src.Bits})
	m.outExpr[name] = src.Name
}

// Inputs returns the declared input ports.
func (m *Module) Inputs() []Port { return append([]Port(nil), m.inputs...) }

// Outputs returns the declared output ports.
func (m *Module) Outputs() []Port { return append([]Port(nil), m.outputs...) }

// Eval computes all outputs for the given input assignment.
func (m *Module) Eval(inputs map[string]uint64) map[string]uint64 {
	env := make(map[string]uint64, len(inputs)+len(m.wireOrder))
	for _, in := range m.inputs {
		v, ok := inputs[in.Name]
		if !ok {
			panic("verilog: missing input " + in.Name)
		}
		env[in.Name] = v & mask(in.Bits)
	}
	for _, w := range m.wireOrder {
		env[w] = m.wires[w].Eval(env)
	}
	out := make(map[string]uint64, len(m.outputs))
	for _, o := range m.outputs {
		out[o.Name] = env[m.outExpr[o.Name]] & mask(o.Bits)
	}
	return out
}

// Emit renders the module as synthesizable Verilog-2001.
func (m *Module) Emit() string {
	var b strings.Builder
	if m.Comment != "" {
		for _, line := range strings.Split(m.Comment, "\n") {
			fmt.Fprintf(&b, "// %s\n", line)
		}
	}
	fmt.Fprintf(&b, "module %s (\n", m.Name)
	var ports []string
	for _, in := range m.inputs {
		ports = append(ports, "  input  wire "+rangeDecl(in.Bits)+in.Name)
	}
	for _, out := range m.outputs {
		ports = append(ports, "  output wire "+rangeDecl(out.Bits)+out.Name)
	}
	b.WriteString(strings.Join(ports, ",\n"))
	b.WriteString("\n);\n\n")

	for _, w := range m.wireOrder {
		e := m.wires[w]
		if lu, ok := e.(Lookup); ok {
			fmt.Fprintf(&b, "  reg %s%s;\n", rangeDecl(lu.Bits), w)
			fmt.Fprintf(&b, "  always @(*) begin\n    case (%s)\n", lu.Sel.Emit())
			for _, k := range lu.sortedKeys() {
				fmt.Fprintf(&b, "      %d'd%d: %s = %d'd%d;\n",
					lu.Sel.Width(), k, w, lu.Bits, lu.Table[k])
			}
			fmt.Fprintf(&b, "      default: %s = %d'd%d;\n", w, lu.Bits, lu.Default)
			b.WriteString("    endcase\n  end\n")
			continue
		}
		fmt.Fprintf(&b, "  wire %s%s = %s;\n", rangeDecl(e.Width()), w, e.Emit())
	}
	b.WriteString("\n")
	for _, o := range m.outputs {
		fmt.Fprintf(&b, "  assign %s = %s;\n", o.Name, m.outExpr[o.Name])
	}
	fmt.Fprintf(&b, "\nendmodule // %s\n", m.Name)
	return b.String()
}

func rangeDecl(bits int) string {
	if bits == 1 {
		return ""
	}
	return fmt.Sprintf("[%d:0] ", bits-1)
}
