package sweep

import (
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Accesses: 1200, Seed: 2} }

func TestConservativeWindowSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet sweep")
	}
	points, err := ConservativeWindow(quickCfg(), []int{2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	// Larger windows catch more gaps: savings must be non-decreasing
	// (within noise) and all positive.
	for i, p := range points {
		if p.Saving <= 0.05 {
			t.Errorf("window %g: saving %.1f%% implausibly low", p.Param, p.Saving*100)
		}
		if i > 0 && p.Saving < points[i-1].Saving-0.02 {
			t.Errorf("saving dropped from %.3f to %.3f at window %g",
				points[i-1].Saving, p.Saving, p.Param)
		}
	}
	// The paper's knee: window 8 captures most of window 16's benefit.
	if points[3].Saving-points[2].Saving > 0.05 {
		t.Errorf("window 8 (%.3f) far from window 16 (%.3f): knee not reproduced",
			points[2].Saving, points[3].Saving)
	}
	t.Log("\n" + Render("conservative window sweep", "clocks", points))
}

func TestReadLatencySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet sweep")
	}
	points, err := ReadLatency(quickCfg(), []int64{20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Saving < 0.15 || p.Saving > 0.45 {
			t.Errorf("RL=%g: saving %.1f%% outside plausible band", p.Param, p.Saving*100)
		}
	}
	// Savings are insensitive to RL (the decision deadline scales).
	spread := points[0].Saving - points[len(points)-1].Saving
	if spread > 0.05 || spread < -0.05 {
		t.Errorf("savings vary %.3f across RL sweep; mechanism should be latency-insensitive", spread)
	}
	t.Log("\n" + Render("read latency sweep", "RL clocks", points))
}

func TestSweepValidation(t *testing.T) {
	if _, err := ConservativeWindow(quickCfg(), []int{0}); err == nil {
		t.Error("zero window must error")
	}
	if _, err := ReadLatency(quickCfg(), []int64{0}); err == nil {
		t.Error("zero RL must error")
	}
}

func TestRender(t *testing.T) {
	out := Render("t", "p", []Point{{Param: 8, Saving: 0.25, PerBit: 550}})
	if !strings.Contains(out, "25.0%") || !strings.Contains(out, "550") {
		t.Errorf("render malformed: %s", out)
	}
}
