// Package sweep runs design-space sensitivity studies around the paper's
// chosen operating points: the conservative detection window (the paper
// fixes 8 clocks), the read latency that gap detection leans on, and the
// workload scale. Each sweep reruns the fleet under the varied parameter
// and reports the headline saving, exposing how robust the published
// design choices are.
package sweep

import (
	"fmt"
	"strings"

	"smores/internal/core"
	"smores/internal/gddr6x"
	"smores/internal/memctrl"
	"smores/internal/report"
)

// Point is one sweep sample.
type Point struct {
	// Param is the varied parameter's value.
	Param float64
	// Saving is the fleet-mean energy saving vs the matching baseline.
	Saving float64
	// PerBit is the SMOREs fleet-mean fJ/bit.
	PerBit float64
}

// Config bounds sweep cost.
type Config struct {
	// Accesses per app per point.
	Accesses int64
	// Seed for reproducibility.
	Seed uint64
}

// DefaultConfig keeps sweeps to a few seconds per point.
func DefaultConfig() Config { return Config{Accesses: 4000, Seed: 1} }

// baselineMean runs the fleet baseline once for a given timing.
func baselineMean(cfg Config, timing *gddr6x.Timing) (float64, error) {
	fr, err := report.RunFleet(report.RunSpec{
		Policy:   memctrl.BaselineMTA,
		Accesses: cfg.Accesses,
		Seed:     cfg.Seed,
		Timing:   timing,
	})
	if err != nil {
		return 0, err
	}
	return fr.MeanPerBit(), nil
}

// ConservativeWindow sweeps the conservative detection window: small
// windows miss gaps (the next command hasn't arrived yet), large windows
// approach exhaustive detection. The paper's 8-clock choice sits at the
// knee.
func ConservativeWindow(cfg Config, windows []int) ([]Point, error) {
	base, err := baselineMean(cfg, nil)
	if err != nil {
		return nil, err
	}
	var out []Point
	for _, w := range windows {
		if w < 1 {
			return nil, fmt.Errorf("sweep: window %d must be positive", w)
		}
		fr, err := report.RunFleet(report.RunSpec{
			Policy:       memctrl.SMOREs,
			Scheme:       core.Scheme{Specification: core.StaticCode, Detection: core.Conservative},
			WindowClocks: w,
			Accesses:     cfg.Accesses,
			Seed:         cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Point{Param: float64(w), Saving: 1 - fr.MeanPerBit()/base, PerBit: fr.MeanPerBit()})
	}
	return out, nil
}

// ReadLatency sweeps RL: the mechanism requires the gap decision to be
// made before data leaves at RL, so savings should be flat across
// realistic latencies — the decision deadline scales with RL.
func ReadLatency(cfg Config, rls []int64) ([]Point, error) {
	var out []Point
	for _, rl := range rls {
		timing := gddr6x.DefaultTiming()
		timing.RL = rl
		if timing.TRTW < rl-timing.WL+timing.TCCD {
			timing.TRTW = rl - timing.WL + timing.TCCD + 2
		}
		if err := timing.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: RL=%d: %w", rl, err)
		}
		base, err := baselineMean(cfg, &timing)
		if err != nil {
			return nil, err
		}
		fr, err := report.RunFleet(report.RunSpec{
			Policy:   memctrl.SMOREs,
			Scheme:   core.Scheme{Specification: core.StaticCode, Detection: core.Exhaustive},
			Accesses: cfg.Accesses,
			Seed:     cfg.Seed,
			Timing:   &timing,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Point{Param: float64(rl), Saving: 1 - fr.MeanPerBit()/base, PerBit: fr.MeanPerBit()})
	}
	return out, nil
}

// Render formats a sweep as a table.
func Render(title, param string, points []Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-12s %12s %12s\n", title, param, "saving", "fJ/bit")
	for _, p := range points {
		fmt.Fprintf(&b, "%-12g %11.1f%% %12.1f\n", p.Param, p.Saving*100, p.PerBit)
	}
	return b.String()
}
