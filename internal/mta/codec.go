// Package mta implements the GDDR6X Maximum Transition Avoidance encoding
// that SMOREs uses as its baseline: each wire's 8-bit beat is split into a
// most-significant bit (sent as plain PAM4 on the group's DBI wire) and 7
// bits mapped to one of 128 four-symbol sequences that never transition by
// 3ΔV. A per-wire inversion rule protects seams between sequences, and an
// L1 postamble protects the seam into an idle bus.
package mta

import (
	"fmt"

	"smores/internal/codec"
	"smores/internal/pam4"
)

// Variant selects which 11 of the 139 eligible sequences are discarded to
// reach the 128-entry table.
type Variant uint8

const (
	// DropHighest11 is the standard MTA table (discard the 11 most
	// expensive sequences).
	DropHighest11 Variant = iota
	// DropLowest11 is the paper's §II-B ablation: discarding the 11
	// cheapest sequences instead costs about 2% more energy.
	DropLowest11
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case DropHighest11:
		return "drop-highest-11"
	case DropLowest11:
		return "drop-lowest-11"
	default:
		return fmt.Sprintf("variant(%d)", uint8(v))
	}
}

const (
	// TableSize is the number of encoded sequences (7 data bits).
	TableSize = 128
	// SeqSymbols is the length of each encoded sequence in UIs.
	SeqSymbols = 4
	// SpaceSize is the number of eligible sequences before discarding.
	SpaceSize = 139
	// DataBitsPerWireBeat is the payload per wire per 4-UI beat: 7 encoded
	// bits plus the MSB that rides on the DBI wire.
	DataBitsPerWireBeat = 8

	// PostambleLevel is the level GDDR6X drives during the one-command-
	// clock postamble that follows a burst into an idle bus.
	PostambleLevel = pam4.L1
	// PostambleUIs is the postamble duration in unit intervals
	// (one command clock = 4 UI).
	PostambleUIs = 4
	// IdleLevel is the level the bus reverts to after the postamble.
	IdleLevel = pam4.L0
)

// Codec is an immutable MTA encoder/decoder.
type Codec struct {
	variant Variant
	model   *pam4.EnergyModel
	table   [TableSize]pam4.Seq
	decode  map[uint32]uint8
	// Steady-state statistics on uniform random data.
	uprightAvg    float64 // mean fJ of an upright sequence
	invertedAvg   float64 // mean fJ of an inverted sequence
	invProb       float64 // steady-state probability a sequence is inverted
	endL3Upright  float64 // P(upright sequence ends at L3)
	endL3Inverted float64 // P(inverted sequence ends at L3)
}

// New builds the standard MTA codec under the given energy model.
func New(m *pam4.EnergyModel) *Codec {
	c, err := NewVariant(m, DropHighest11)
	if err != nil {
		panic("mta: standard codec construction failed: " + err.Error())
	}
	return c
}

// NewVariant builds an MTA codec with an explicit discard policy.
func NewVariant(m *pam4.EnergyModel, v Variant) (*Codec, error) {
	space, err := codec.Enumerate(codec.EnumConstraint{
		Symbols:       SeqSymbols,
		MaxLevel:      pam4.L3,
		MaxStartLevel: pam4.L2,
		MaxStep:       pam4.MaxTransition,
	})
	if err != nil {
		return nil, err
	}
	if len(space) != SpaceSize {
		return nil, fmt.Errorf("mta: sequence space has %d entries, want %d", len(space), SpaceSize)
	}
	codec.SortByEnergy(space, m)

	c := &Codec{variant: v, model: m, decode: make(map[uint32]uint8, TableSize)}
	var kept []pam4.Seq
	switch v {
	case DropHighest11:
		kept = space[:TableSize]
	case DropLowest11:
		kept = space[SpaceSize-TableSize:]
	default:
		return nil, fmt.Errorf("mta: unknown variant %v", v)
	}
	copy(c.table[:], kept)
	for val, s := range c.table {
		c.decode[s.Packed()] = uint8(val)
	}

	// Steady-state inversion statistics. A transmitted sequence is
	// inverted iff the previous transmitted sequence on the wire ended at
	// L3, giving a two-state Markov chain over {upright, inverted}.
	var endHighUpright, endHighInverted float64
	for _, s := range c.table {
		c.uprightAvg += m.SeqEnergy(s)
		c.invertedAvg += m.SeqEnergy(s.Invert())
		if s.Last() == pam4.L3 {
			endHighUpright++
		}
		if s.Invert().Last() == pam4.L3 {
			endHighInverted++
		}
	}
	c.uprightAvg /= TableSize
	c.invertedAvg /= TableSize
	c.endL3Upright = endHighUpright / TableSize   // P(next inverted | this upright)
	c.endL3Inverted = endHighInverted / TableSize // P(next inverted | this inverted)
	// π = (1−π)·pU + π·pI  ⇒  π = pU / (1 + pU − pI)
	c.invProb = c.endL3Upright / (1 + c.endL3Upright - c.endL3Inverted)
	return c, nil
}

// Variant returns the codec's discard policy.
func (c *Codec) Variant() Variant { return c.variant }

// Table returns a copy of the canonical (upright) sequence table indexed
// by 7-bit data value, in ascending-energy order.
func (c *Codec) Table() []pam4.Seq { return append([]pam4.Seq(nil), c.table[:]...) }

// inverted reports whether the next sequence on a wire must be sent
// inverted, given the last level transmitted on that wire. Per the paper's
// §IV-B ("the MTA code inverts the entire next encoded symbol sequence if
// the previous symbol ended on an L3"), inversion triggers only on L3:
// an upright sequence starts at L0..L2, which is a safe ≤2ΔV step from
// anything up to L2, and an inverted sequence starts at L1..L3, safe after
// an L3. Idle (L0) and postamble (L1) seams therefore never invert.
func inverted(prev pam4.Level) bool { return prev == pam4.L3 }

// EncodeWire encodes 7 data bits for one wire. prev is the last level
// physically present on the wire (idle level, postamble level, or the
// final symbol of the preceding sequence). It returns the transmitted
// sequence and the wire's new trailing level.
func (c *Codec) EncodeWire(data7 uint8, prev pam4.Level) (pam4.Seq, pam4.Level) {
	if data7 >= TableSize {
		//smores:allowalloc panic message on out-of-range input, unreachable from the simulator
		panic(fmt.Sprintf("mta: data value %d exceeds 7 bits", data7))
	}
	s := c.table[data7]
	if inverted(prev) {
		s = s.Invert()
	}
	return s, s.Last()
}

// DecodeWire reverses EncodeWire given the same prev level the encoder
// saw. It reports false for sequences outside the table.
func (c *Codec) DecodeWire(s pam4.Seq, prev pam4.Level) (uint8, bool) {
	if s.Len() != SeqSymbols {
		return 0, false
	}
	if inverted(prev) {
		s = s.Invert()
	}
	v, ok := c.decode[s.Packed()]
	return v, ok
}

// ExpectedSeqEnergy returns the steady-state mean fJ of one transmitted
// 4-symbol sequence on uniform random data, including the energy effect of
// the inversion rule.
func (c *Codec) ExpectedSeqEnergy() float64 {
	return (1-c.invProb)*c.uprightAvg + c.invProb*c.invertedAvg
}

// inversionChainDepth bounds the warm-up recurrence; the chain converges
// to within float noise well before this.
const inversionChainDepth = 12

// inversionProbAt returns the inversion probability of the k-th sequence
// after a seam reset (idle, postamble, or a sparse burst all leave wires
// at or below L2, so sequence 0 is never inverted).
func (c *Codec) inversionProbAt(k int) float64 {
	if k >= inversionChainDepth {
		return c.invProb
	}
	// π₀ = 0; π_{k+1} = (1−π_k)·pU + π_k·pI where pU/pI are the
	// end-at-L3 probabilities of upright/inverted sequences.
	pU := c.endL3Upright
	pI := c.endL3Inverted
	pi := 0.0
	for i := 0; i < k; i++ {
		pi = (1-pi)*pU + pi*pI
	}
	return pi
}

// ExpectedSeqEnergyAt returns the mean fJ of the k-th transmitted
// sequence after a seam reset (k = 0 immediately after idle/postamble).
func (c *Codec) ExpectedSeqEnergyAt(k int) float64 {
	pi := c.inversionProbAt(k)
	return (1-pi)*c.uprightAvg + pi*c.invertedAvg
}

// ExpectedBeatEnergyAt returns the mean fJ of the k-th 9-wire group beat
// after a seam reset.
func (c *Codec) ExpectedBeatEnergyAt(k int) float64 {
	payload, dbi := c.ExpectedBeatEnergySplitAt(k)
	return payload + dbi
}

// ExpectedBeatEnergySplitAt decomposes ExpectedBeatEnergyAt into the
// eight MTA-encoded data wires (payload) and the DBI wire carrying plain
// PAM4 MSBs — the split the energy-attribution profiler records. The two
// parts always sum to ExpectedBeatEnergyAt(k) exactly.
func (c *Codec) ExpectedBeatEnergySplitAt(k int) (payload, dbi float64) {
	return c.ExpectedSeqEnergyAt(k) * GroupDataWires,
		float64(SeqSymbols) * c.model.MeanSymbolEnergy()
}

// EndL3ProbAt returns the probability that the k-th transmitted sequence
// after a seam reset ends at L3 — the chance a wire needs the
// level-shifted idle transition.
func (c *Codec) EndL3ProbAt(k int) float64 {
	pi := c.inversionProbAt(k)
	return (1-pi)*c.endL3Upright + pi*c.endL3Inverted
}

// InversionProbability returns the steady-state probability that a
// sequence is transmitted inverted under back-to-back uniform traffic.
func (c *Codec) InversionProbability() float64 { return c.invProb }

// ExpectedPerBit returns the steady-state mean fJ per data bit of MTA
// signaling on uniform random data: 8 encoded wires carrying 7 bits each
// plus the DBI wire carrying the 8 MSBs as plain PAM4, per 4-UI beat.
// For the standard table this is the paper's ≈574.8 fJ/bit (before
// postamble and logic overhead).
func (c *Codec) ExpectedPerBit() float64 {
	seq := c.ExpectedSeqEnergy() * GroupDataWires
	dbi := float64(SeqSymbols) * c.model.MeanSymbolEnergy()
	return (seq + dbi) / GroupBeatBits
}

// ExpectedBeatEnergy returns the steady-state mean fJ of one 9-wire,
// 4-UI group beat carrying 64 bits of uniform random data.
func (c *Codec) ExpectedBeatEnergy() float64 {
	return c.ExpectedPerBit() * GroupBeatBits
}

// Model returns the energy model the codec was built with.
func (c *Codec) Model() *pam4.EnergyModel { return c.model }
