package mta

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"smores/internal/pam4"
)

func approx(t *testing.T, name string, got, want, tolPct float64) {
	t.Helper()
	if math.Abs(got-want)/math.Abs(want)*100 > tolPct {
		t.Errorf("%s = %g, want %g (±%g%%)", name, got, want, tolPct)
	}
}

func TestTableProperties(t *testing.T) {
	c := New(pam4.DefaultEnergyModel())
	table := c.Table()
	if len(table) != TableSize {
		t.Fatalf("table has %d entries, want %d", len(table), TableSize)
	}
	seen := make(map[uint32]bool)
	m := pam4.DefaultEnergyModel()
	prevE := -1.0
	for v, s := range table {
		if s.Len() != SeqSymbols {
			t.Fatalf("entry %d has %d symbols", v, s.Len())
		}
		if seen[s.Packed()] {
			t.Fatalf("duplicate sequence %v", s)
		}
		seen[s.Packed()] = true
		if s.First() == pam4.L3 {
			t.Errorf("entry %d (%v) starts with L3", v, s)
		}
		if s.MaxInternalDelta() > pam4.MaxTransition {
			t.Errorf("entry %d (%v) has a 3ΔV transition", v, s)
		}
		if e := m.SeqEnergy(s); e < prevE {
			t.Errorf("table not in ascending energy order at %d", v)
		} else {
			prevE = e
		}
	}
	if table[0].String() != "0000" {
		t.Errorf("cheapest entry = %v, want 0000", table[0])
	}
}

// TestDropHighestBeatsDropLowest pins the paper's §II-B claim: discarding
// the lowest-energy 11 sequences instead of the highest-energy 11 costs
// about 2% more energy.
func TestDropHighestBeatsDropLowest(t *testing.T) {
	m := pam4.DefaultEnergyModel()
	std := New(m)
	abl, err := NewVariant(m, DropLowest11)
	if err != nil {
		t.Fatal(err)
	}
	overhead := abl.ExpectedPerBit()/std.ExpectedPerBit() - 1
	// The paper quotes ≈2%; our wire-energy model measures ≈6% (the
	// paper's figure likely dilutes over additional fixed I/O energy).
	// The load-bearing claim is that drop-highest is strictly better.
	if overhead < 0.01 || overhead > 0.12 {
		t.Errorf("drop-lowest-11 overhead = %.2f%%, expected within (1%%,12%%)", overhead*100)
	}
	t.Logf("drop-lowest-11 overhead: %.2f%% (paper: ≈2%%)", overhead*100)
}

func TestNewVariantUnknown(t *testing.T) {
	if _, err := NewVariant(pam4.DefaultEnergyModel(), Variant(99)); err == nil {
		t.Error("unknown variant must error")
	}
	if Variant(99).String() == "" || DropHighest11.String() != "drop-highest-11" {
		t.Error("variant naming broken")
	}
}

// TestExpectedPerBitMatchesPaper pins the MTA baseline energy against the
// paper's 574.8 fJ/bit (steady-state back-to-back traffic, no postamble,
// no logic energy).
func TestExpectedPerBitMatchesPaper(t *testing.T) {
	c := New(pam4.DefaultEnergyModel())
	got := c.ExpectedPerBit()
	t.Logf("MTA expected fJ/bit = %.1f (paper: 574.8)", got)
	approx(t, "MTA fJ/bit", got, 574.8, 2.5)
	// MTA must cost more than raw PAM4 (the paper's 8.7% overhead band).
	overhead := got/pam4.DefaultEnergyModel().PAM4PerBit() - 1
	if overhead < 0.04 || overhead > 0.13 {
		t.Errorf("MTA overhead vs raw PAM4 = %.1f%%, paper says ≈8.7%%", overhead*100)
	}
	t.Logf("MTA overhead vs raw PAM4: %.1f%% (paper: 8.7%%)", overhead*100)
}

func TestEncodeWireSeamSafety(t *testing.T) {
	c := New(pam4.DefaultEnergyModel())
	for prev := pam4.L0; prev < pam4.NumLevels; prev++ {
		for v := 0; v < TableSize; v++ {
			s, last := c.EncodeWire(uint8(v), prev)
			if pam4.Delta(prev, s.First()) > pam4.MaxTransition {
				t.Fatalf("prev=%v data=%d: seam transition %v→%v is 3ΔV", prev, v, prev, s.First())
			}
			if s.MaxInternalDelta() > pam4.MaxTransition {
				t.Fatalf("prev=%v data=%d: internal 3ΔV in %v", prev, v, s)
			}
			if last != s.Last() {
				t.Fatalf("returned trailing level %v != %v", last, s.Last())
			}
		}
	}
}

func TestWireRoundTripAllSeams(t *testing.T) {
	c := New(pam4.DefaultEnergyModel())
	for prev := pam4.L0; prev < pam4.NumLevels; prev++ {
		for v := 0; v < TableSize; v++ {
			s, _ := c.EncodeWire(uint8(v), prev)
			got, ok := c.DecodeWire(s, prev)
			if !ok || got != uint8(v) {
				t.Fatalf("roundtrip failed: prev=%v v=%d got=%d ok=%v", prev, v, got, ok)
			}
		}
	}
}

func TestDecodeWireRejects(t *testing.T) {
	c := New(pam4.DefaultEnergyModel())
	if _, ok := c.DecodeWire(pam4.MakeSeq(pam4.L0, pam4.L0), pam4.L0); ok {
		t.Error("accepted wrong-length sequence")
	}
	// A sequence in the 139-space but dropped from the table: the most
	// expensive eligible sequence (3333 is ineligible; find one by probing
	// an expensive pattern that was discarded).
	if _, ok := c.DecodeWire(pam4.MakeSeq(pam4.L2, pam4.L3, pam4.L3, pam4.L3), pam4.L0); ok {
		t.Error("accepted a discarded high-energy sequence")
	}
}

func TestEncodeWirePanicsOn8Bits(t *testing.T) {
	c := New(pam4.DefaultEnergyModel())
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 8-bit value")
		}
	}()
	c.EncodeWire(128, pam4.L0)
}

// TestStreamingWireNo3DV drives a long stream of random beats through one
// wire and checks that no 3ΔV transition ever appears, including across
// sequence seams.
func TestStreamingWireNo3DV(t *testing.T) {
	c := New(pam4.DefaultEnergyModel())
	rng := rand.New(rand.NewSource(7))
	prev := IdleLevel
	var last pam4.Level = IdleLevel
	for i := 0; i < 5000; i++ {
		s, nl := c.EncodeWire(uint8(rng.Intn(TableSize)), prev)
		for j := 0; j < s.Len(); j++ {
			if pam4.Delta(last, s.At(j)) > pam4.MaxTransition {
				t.Fatalf("3ΔV at beat %d symbol %d: %v→%v", i, j, last, s.At(j))
			}
			last = s.At(j)
		}
		prev = nl
	}
}

// TestSteadyStateEnergyMonteCarlo cross-checks the closed-form
// ExpectedSeqEnergy against a long simulated stream.
func TestSteadyStateEnergyMonteCarlo(t *testing.T) {
	m := pam4.DefaultEnergyModel()
	c := New(m)
	rng := rand.New(rand.NewSource(11))
	prev := IdleLevel
	const n = 200000
	var total float64
	for i := 0; i < n; i++ {
		s, nl := c.EncodeWire(uint8(rng.Intn(TableSize)), prev)
		total += m.SeqEnergy(s)
		prev = nl
	}
	approx(t, "MC seq energy", total/n, c.ExpectedSeqEnergy(), 0.5)
}

func TestInversionProbabilityBounds(t *testing.T) {
	c := New(pam4.DefaultEnergyModel())
	p := c.InversionProbability()
	if p <= 0 || p >= 1 {
		t.Errorf("inversion probability %g out of (0,1)", p)
	}
	// Inverted sequences are more expensive on average (L0-heavy codes
	// become L3-heavy).
	if c.ExpectedSeqEnergy() <= c.Model().SeqEnergy(c.Table()[0]) {
		t.Error("expected energy suspiciously low")
	}
}

func TestGroupBeatRoundTrip(t *testing.T) {
	c := New(pam4.DefaultEnergyModel())
	rng := rand.New(rand.NewSource(3))
	encState := IdleGroupState()
	decState := IdleGroupState()
	for beat := 0; beat < 2000; beat++ {
		var data [GroupDataWires]byte
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		b := c.EncodeGroupBeat(data, &encState)
		got, ok := c.DecodeGroupBeat(b, &decState)
		if !ok {
			t.Fatalf("beat %d failed to decode", beat)
		}
		if got != data {
			t.Fatalf("beat %d: got %v want %v", beat, got, data)
		}
		if encState != decState {
			t.Fatalf("beat %d: encoder/decoder state diverged", beat)
		}
	}
}

func TestGroupBeatQuick(t *testing.T) {
	c := New(pam4.DefaultEnergyModel())
	f := func(data [GroupDataWires]byte, seed int64) bool {
		// Random but matched starting state on both sides.
		rng := rand.New(rand.NewSource(seed))
		var st GroupState
		for i := range st {
			st[i] = pam4.Level(rng.Intn(int(pam4.NumLevels)))
		}
		enc, dec := st, st
		b := c.EncodeGroupBeat(data, &enc)
		got, ok := c.DecodeGroupBeat(b, &dec)
		return ok && got == data && enc == dec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeGroupBeatFailureLeavesStateUntouched(t *testing.T) {
	c := New(pam4.DefaultEnergyModel())
	st := IdleGroupState()
	var bad Beat
	for i := range bad {
		bad[i] = pam4.MakeSeq(pam4.L2, pam4.L3, pam4.L3, pam4.L3) // dropped sequence
	}
	before := st
	if _, ok := c.DecodeGroupBeat(bad, &st); ok {
		t.Fatal("bad beat decoded")
	}
	if st != before {
		t.Error("state mutated on failed decode")
	}
	// Wrong-length DBI sequence must also fail.
	var data [GroupDataWires]byte
	enc := IdleGroupState()
	good := c.EncodeGroupBeat(data, &enc)
	good[DBIWire] = pam4.MakeSeq(pam4.L0)
	dec := IdleGroupState()
	if _, ok := c.DecodeGroupBeat(good, &dec); ok {
		t.Error("truncated DBI wire decoded")
	}
}

func TestMSBPackRoundTrip(t *testing.T) {
	for pattern := 0; pattern < 256; pattern++ {
		var msbs [GroupDataWires]uint8
		for i := range msbs {
			msbs[i] = uint8(pattern>>uint(i)) & 1
		}
		got, ok := unpackMSBs(packMSBs(msbs))
		if !ok || got != msbs {
			t.Fatalf("pattern %08b: got %v", pattern, got)
		}
	}
}

func TestIdleGroupState(t *testing.T) {
	s := IdleGroupState()
	for i, l := range s {
		if l != IdleLevel {
			t.Errorf("wire %d idle level = %v", i, l)
		}
	}
}

func TestExpectedBeatEnergyConsistency(t *testing.T) {
	c := New(pam4.DefaultEnergyModel())
	approx(t, "beat energy", c.ExpectedBeatEnergy(), c.ExpectedPerBit()*GroupBeatBits, 1e-9)
}
