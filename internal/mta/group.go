package mta

import "smores/internal/pam4"

// A GDDR6X byte group is eight data wires plus one DBI wire. Every command
// clock (4 UIs) the group carries one byte per data wire: the low 7 bits
// MTA-encoded on the wire itself, the MSB multiplexed onto the DBI wire as
// plain PAM4 (two MSBs per DBI symbol).
const (
	// GroupDataWires is the number of MTA-encoded wires per group.
	GroupDataWires = 8
	// GroupWires includes the DBI wire.
	GroupWires = GroupDataWires + 1
	// DBIWire is the index of the DBI wire within a group.
	DBIWire = GroupDataWires
	// GroupBeatBits is the payload of one group beat: 8 wires × 8 bits.
	GroupBeatBits = GroupDataWires * DataBitsPerWireBeat
)

// GroupState is the trailing level of each wire in a group — everything
// the codec needs to encode or decode the next beat. The zero value is a
// fully idle group (all wires at L0).
type GroupState [GroupWires]pam4.Level

// IdleGroupState returns the state of a group parked at the idle level.
func IdleGroupState() GroupState {
	var s GroupState
	for i := range s {
		s[i] = IdleLevel
	}
	return s
}

// Beat is the transmitted form of one group beat: a 4-symbol sequence per
// wire, the DBI wire last.
type Beat [GroupWires]pam4.Seq

// EncodeGroupBeat encodes one byte per data wire. state is mutated to the
// group's new trailing levels.
//
//smores:hotpath
func (c *Codec) EncodeGroupBeat(data [GroupDataWires]byte, state *GroupState) Beat {
	var beat Beat
	var msbs [GroupDataWires]uint8
	for w := 0; w < GroupDataWires; w++ {
		msbs[w] = data[w] >> 7
		beat[w], state[w] = c.EncodeWire(data[w]&0x7f, state[w])
	}
	beat[DBIWire] = packMSBs(msbs)
	state[DBIWire] = beat[DBIWire].Last()
	return beat
}

// DecodeGroupBeat reverses EncodeGroupBeat. state must hold the same
// trailing levels the encoder saw and is advanced on success; on failure
// it is left unchanged and ok is false.
func (c *Codec) DecodeGroupBeat(beat Beat, state *GroupState) (data [GroupDataWires]byte, ok bool) {
	next := *state
	for w := 0; w < GroupDataWires; w++ {
		v, ok := c.DecodeWire(beat[w], state[w])
		if !ok {
			return data, false
		}
		data[w] = v
		next[w] = beat[w].Last()
	}
	msbs, ok := unpackMSBs(beat[DBIWire])
	if !ok {
		return data, false
	}
	for w := 0; w < GroupDataWires; w++ {
		data[w] |= msbs[w] << 7
	}
	next[DBIWire] = beat[DBIWire].Last()
	*state = next
	return data, true
}

// packMSBs maps the eight per-wire MSBs onto the DBI wire's four PAM4
// symbols: symbol i carries the MSBs of wires 2i (high bit) and 2i+1.
func packMSBs(msbs [GroupDataWires]uint8) pam4.Seq {
	var s pam4.Seq
	for i := 0; i < SeqSymbols; i++ {
		s = s.Append(pam4.LevelFromBits(msbs[2*i], msbs[2*i+1]))
	}
	return s
}

// unpackMSBs reverses packMSBs.
func unpackMSBs(s pam4.Seq) (msbs [GroupDataWires]uint8, ok bool) {
	if s.Len() != SeqSymbols {
		return msbs, false
	}
	for i := 0; i < SeqSymbols; i++ {
		msbs[2*i], msbs[2*i+1] = s.At(i).Bits()
	}
	return msbs, true
}
