package mta

import "smores/internal/pam4"

// Column is the physical state of one group's nine wires during a single
// unit interval, DBI wire last. Bursts are transmitted as a series of
// columns; this is the representation the bus model consumes.
type Column [GroupWires]pam4.Level

// UniformColumn returns a column with every wire at the same level.
func UniformColumn(l pam4.Level) Column {
	var c Column
	for i := range c {
		c[i] = l
	}
	return c
}

// IdleColumn is one UI of idle bus (all wires at L0).
func IdleColumn() Column { return UniformColumn(IdleLevel) }

// PostambleColumn is one UI of the GDDR6X postamble (all wires at L1).
func PostambleColumn() Column { return UniformColumn(PostambleLevel) }

// Columns expands a beat into its four transmitted columns.
func (b Beat) Columns() [SeqSymbols]Column {
	var cols [SeqSymbols]Column
	for ui := 0; ui < SeqSymbols; ui++ {
		for w := 0; w < GroupWires; w++ {
			cols[ui][w] = b[w].At(ui)
		}
	}
	return cols
}

// BeatFromColumns reassembles a beat from four received columns.
func BeatFromColumns(cols [SeqSymbols]Column) Beat {
	var b Beat
	for w := 0; w < GroupWires; w++ {
		var s pam4.Seq
		for ui := 0; ui < SeqSymbols; ui++ {
			s = s.Append(cols[ui][w])
		}
		b[w] = s
	}
	return b
}
