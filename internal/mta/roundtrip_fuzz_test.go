package mta

import (
	"testing"

	"smores/internal/pam4"
)

// FuzzMTARoundTrip drives one dense MTA group beat from an arbitrary
// trailing state: the beat must decode back bit-identically, advance
// both sides' state identically, and never put an illegal 3ΔV step on a
// data wire — neither inside a wire's 4-symbol sequence nor on the seam
// from the previous trailing level (the inversion rule's whole job).
// The DBI wire carries packed MSBs and is restriction-exempt.
func FuzzMTARoundTrip(f *testing.F) {
	f.Add([]byte("\x00\x00\x00\x00\x00\x00\x00\x00"), uint8(0))
	f.Add([]byte("\xff\xfe\x80\x7f\x55\xaa\x01\x00"), uint8(0xe4))
	f.Add([]byte("smores!?"), uint8(0xff))
	c := New(pam4.DefaultEnergyModel())
	f.Fuzz(func(t *testing.T, raw []byte, stSeed uint8) {
		if len(raw) < GroupDataWires {
			return
		}
		var data [GroupDataWires]byte
		copy(data[:], raw)
		var st GroupState
		for i := range st {
			st[i] = pam4.Level((stSeed >> uint(i%4)) & 3)
		}

		encState := st
		beat := c.EncodeGroupBeat(data, &encState)

		for w := 0; w < GroupDataWires; w++ {
			prev := st[w]
			for i := 0; i < beat[w].Len(); i++ {
				l := beat[w].At(i)
				if !pam4.TransitionOK(prev, l) {
					t.Fatalf("illegal %dΔV step on wire %d at symbol %d (prev %v -> %v, data %#x)",
						pam4.Delta(prev, l), w, i, prev, l, data[w])
				}
				prev = l
			}
			if encState[w] != beat[w].Last() {
				t.Fatalf("wire %d state %v does not match trailing symbol %v", w, encState[w], beat[w].Last())
			}
		}

		decState := st
		back, ok := c.DecodeGroupBeat(beat, &decState)
		if !ok {
			t.Fatal("decoder rejected the encoder's own beat")
		}
		if back != data {
			t.Fatalf("round trip changed data: got %x want %x", back, data)
		}
		if decState != encState {
			t.Fatalf("states diverged: decoder %v encoder %v", decState, encState)
		}
	})
}
