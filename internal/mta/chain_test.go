package mta

import (
	"math/rand"
	"testing"

	"smores/internal/pam4"
)

func TestInversionChainWarmup(t *testing.T) {
	c := New(pam4.DefaultEnergyModel())
	// Sequence 0 after a seam reset is never inverted.
	if got := c.inversionProbAt(0); got != 0 {
		t.Errorf("π₀ = %g, want 0", got)
	}
	// The chain increases toward and converges on the steady state.
	prev := 0.0
	for k := 1; k <= inversionChainDepth; k++ {
		pi := c.inversionProbAt(k)
		if pi <= 0 || pi > c.InversionProbability()+1e-9 {
			t.Errorf("π_%d = %g out of (0, %g]", k, pi, c.InversionProbability())
		}
		if pi < prev-1e-9 {
			t.Errorf("π_%d = %g decreased from %g", k, pi, prev)
		}
		prev = pi
	}
	if got := c.inversionProbAt(inversionChainDepth + 5); got != c.InversionProbability() {
		t.Errorf("deep chain π = %g, want steady state %g", got, c.InversionProbability())
	}
	// Energies follow: fresh sequences are cheapest.
	if c.ExpectedSeqEnergyAt(0) >= c.ExpectedSeqEnergy() {
		t.Error("fresh sequence should be cheaper than steady state")
	}
	if c.ExpectedBeatEnergyAt(0) >= c.ExpectedBeatEnergyAt(100) {
		t.Error("fresh beat should be cheaper than steady state")
	}
}

// TestChainWarmupMonteCarlo verifies the warm-up recurrence against a
// simulated wire that resets its seam every burst.
func TestChainWarmupMonteCarlo(t *testing.T) {
	m := pam4.DefaultEnergyModel()
	c := New(m)
	rng := rand.New(rand.NewSource(99))
	const bursts = 120000
	const seqsPerBurst = 2
	sums := make([]float64, seqsPerBurst)
	for b := 0; b < bursts; b++ {
		prev := IdleLevel // seam reset
		for k := 0; k < seqsPerBurst; k++ {
			s, nl := c.EncodeWire(uint8(rng.Intn(TableSize)), prev)
			sums[k] += m.SeqEnergy(s)
			prev = nl
		}
	}
	for k := 0; k < seqsPerBurst; k++ {
		got := sums[k] / bursts
		want := c.ExpectedSeqEnergyAt(k)
		if diff := (got - want) / want; diff > 0.01 || diff < -0.01 {
			t.Errorf("sequence %d: MC %.1f vs model %.1f", k, got, want)
		}
	}
}

func TestEndL3Prob(t *testing.T) {
	c := New(pam4.DefaultEnergyModel())
	p0 := c.EndL3ProbAt(0)
	if p0 <= 0 || p0 >= 1 {
		t.Fatalf("EndL3ProbAt(0) = %g", p0)
	}
	// Monte Carlo check for the fresh case.
	rng := rand.New(rand.NewSource(5))
	hits := 0
	const n = 200000
	for i := 0; i < n; i++ {
		s, _ := c.EncodeWire(uint8(rng.Intn(TableSize)), IdleLevel)
		if s.Last() == pam4.L3 {
			hits++
		}
	}
	got := float64(hits) / n
	if diff := (got - p0) / p0; diff > 0.03 || diff < -0.03 {
		t.Errorf("fresh end-L3 probability: MC %.4f vs model %.4f", got, p0)
	}
}
