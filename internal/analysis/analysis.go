// Package analysis is a minimal, offline, API-compatible subset of
// golang.org/x/tools/go/analysis. The container building this repo has
// no module proxy access, so rather than vendoring x/tools wholesale the
// linter stack is built against this mirror of the core types. The field
// and method names match the upstream package exactly, so every analyzer
// under internal/analyzers can migrate to the real framework by changing
// nothing but its import path once the dependency is available.
//
// Supported surface: single-pass analyzers over one type-checked package
// (Analyzer.Run with Pass.Files/Pkg/TypesInfo/Report), diagnostics with
// positions and suggested fixes expressed as text edits. Not supported:
// facts, cross-pass Requires/ResultOf plumbing, and per-analyzer flag
// sets — none of which the SMOREs analyzers need.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string
	// Doc is the analyzer's documentation. By convention the first line
	// is a one-sentence summary.
	Doc string
	// Run applies the analyzer to one package. It may report
	// diagnostics via pass.Report and may return a result (unused by
	// this subset's driver, kept for upstream compatibility).
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass provides one analyzer with the input it needs to inspect a
// single type-checked package, mirroring x/tools' analysis.Pass.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// TypesSizes describes the target architecture's size/alignment
	// model (the loader fills in the gc sizes for the build host).
	TypesSizes types.Sizes

	// Report emits one diagnostic. The driver fills this in.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Range is satisfied by ast.Node and token-position pairs.
type Range interface {
	Pos() token.Pos
	End() token.Pos
}

// ReportRangef reports a diagnostic spanning rng.
func (p *Pass) ReportRangef(rng Range, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: rng.Pos(), End: rng.End(), Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, anchored to source positions.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional: zero means unknown
	Category string    // optional sub-category within the analyzer
	Message  string

	// SuggestedFixes carries machine-applicable repairs. Every fix must
	// be behavior-preserving: the multichecker applies them under -fix
	// without human review.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one alternative repair for a diagnostic. All edits of
// one fix are applied together or not at all.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces the source in [Pos, End) with NewText. A zero-width
// range inserts.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
