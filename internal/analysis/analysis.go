// Package analysis is a minimal, offline, API-compatible subset of
// golang.org/x/tools/go/analysis. The container building this repo has
// no module proxy access, so rather than vendoring x/tools wholesale the
// linter stack is built against this mirror of the core types. The field
// and method names match the upstream package exactly, so every analyzer
// under internal/analyzers can migrate to the real framework by changing
// nothing but its import path once the dependency is available.
//
// Supported surface: analyzers over type-checked packages (Analyzer.Run
// with Pass.Files/Pkg/TypesInfo/Report), diagnostics with positions and
// suggested fixes expressed as text edits, cross-analyzer dependencies
// (Requires/ResultOf), and modular facts: package- and object-level
// messages gob-serialized between passes so an annotation or summary
// computed in one package is visible when its dependents are analyzed.
// Not supported: per-analyzer flag sets.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string
	// Doc is the analyzer's documentation. By convention the first line
	// is a one-sentence summary.
	Doc string
	// Run applies the analyzer to one package. It may report
	// diagnostics via pass.Report and may return a result, which the
	// driver makes available to dependents via Pass.ResultOf.
	Run func(*Pass) (interface{}, error)

	// Requires lists analyzers that must run on the same package first;
	// their results appear in Pass.ResultOf. The driver runs required
	// analyzers automatically (without reporting their diagnostics
	// unless they were requested too) and rejects dependency cycles.
	Requires []*Analyzer

	// FactTypes declares the concrete fact types this analyzer exports
	// and imports, one zero value per type. Every type must be a
	// pointer to a gob-encodable struct. An analyzer that touches facts
	// without declaring the type gets an error at export/import time.
	FactTypes []Fact
}

func (a *Analyzer) String() string { return a.Name }

// Fact is a message from one package's analysis to the analyses of its
// dependents: an object- or package-attached summary that survives the
// package boundary. Concrete fact types must be pointers to
// gob-encodable structs (the driver serializes every exported fact, so
// a fact that cannot round-trip is rejected at export time) and must be
// declared in the owning Analyzer's FactTypes.
type Fact interface {
	// AFact is a marker method; it has no behavior.
	AFact()
}

// ObjectFact is an (object, fact) pair, as enumerated by AllObjectFacts.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// PackageFact is a (package, fact) pair, as enumerated by
// AllPackageFacts.
type PackageFact struct {
	Package *types.Package
	Fact    Fact
}

// Pass provides one analyzer with the input it needs to inspect a
// single type-checked package, mirroring x/tools' analysis.Pass.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// TypesSizes describes the target architecture's size/alignment
	// model (the loader fills in the gc sizes for the build host).
	TypesSizes types.Sizes

	// ResultOf maps each analyzer in Analyzer.Requires to its result
	// for this package.
	ResultOf map[*Analyzer]interface{}

	// Report emits one diagnostic. The driver fills this in.
	Report func(Diagnostic)

	// Fact plumbing, installed by the driver. Nil only when a Pass is
	// constructed by hand outside a Session.
	exportObjectFact  func(obj types.Object, fact Fact) error
	importObjectFact  func(obj types.Object, fact Fact) bool
	exportPackageFact func(fact Fact) error
	importPackageFact func(pkg *types.Package, fact Fact) bool
	allObjectFacts    func() []ObjectFact
	allPackageFacts   func() []PackageFact
}

// ExportObjectFact associates fact with obj, which must belong to the
// package under analysis. The fact is serialized immediately; an
// unserializable or undeclared fact type is a hard analyzer error
// surfaced by the driver.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.exportObjectFact == nil {
		panic("analysis: ExportObjectFact called outside a driver session")
	}
	if err := p.exportObjectFact(obj, fact); err != nil {
		panic(fmt.Sprintf("analysis: %s: ExportObjectFact: %v", p.Analyzer.Name, err))
	}
}

// ImportObjectFact copies into fact the fact previously exported for
// obj (by this analyzer, in this or a dependency package) and reports
// whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.importObjectFact == nil {
		return false
	}
	return p.importObjectFact(obj, fact)
}

// ExportPackageFact associates fact with the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.exportPackageFact == nil {
		panic("analysis: ExportPackageFact called outside a driver session")
	}
	if err := p.exportPackageFact(fact); err != nil {
		panic(fmt.Sprintf("analysis: %s: ExportPackageFact: %v", p.Analyzer.Name, err))
	}
}

// ImportPackageFact copies into fact the fact previously exported for
// pkg and reports whether one existed.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if p.importPackageFact == nil {
		return false
	}
	return p.importPackageFact(pkg, fact)
}

// AllObjectFacts enumerates every object fact visible to this pass
// (its own exports plus those of analyzed dependencies), in a
// deterministic order.
func (p *Pass) AllObjectFacts() []ObjectFact {
	if p.allObjectFacts == nil {
		return nil
	}
	return p.allObjectFacts()
}

// AllPackageFacts enumerates every package fact visible to this pass in
// a deterministic order.
func (p *Pass) AllPackageFacts() []PackageFact {
	if p.allPackageFacts == nil {
		return nil
	}
	return p.allPackageFacts()
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Range is satisfied by ast.Node and token-position pairs.
type Range interface {
	Pos() token.Pos
	End() token.Pos
}

// ReportRangef reports a diagnostic spanning rng.
func (p *Pass) ReportRangef(rng Range, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: rng.Pos(), End: rng.End(), Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, anchored to source positions.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional: zero means unknown
	Category string    // optional sub-category within the analyzer
	Message  string

	// SuggestedFixes carries machine-applicable repairs. Every fix must
	// be behavior-preserving: the multichecker applies them under -fix
	// without human review.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one alternative repair for a diagnostic. All edits of
// one fix are applied together or not at all.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces the source in [Pos, End) with NewText. A zero-width
// range inserts.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
