// Package load type-checks Go packages for the analysis driver without
// golang.org/x/tools/go/packages: it shells out to `go list -deps -json`
// for build-system metadata (file sets, import graphs, build-constraint
// filtering) and runs the standard library type checker over the result.
//
// Dependency packages — everything the lint targets import, including
// the standard library — are checked with IgnoreFuncBodies, so a full
// `./...` load stays in the low seconds. Target packages keep full
// bodies and complete types.Info maps, which is what the analyzers
// consume. CGO is disabled for the load so the pure-Go file sets are
// selected and no C toolchain is required.
package load

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded (and, for non-DepOnly packages, fully
// type-checked) Go package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	// DepOnly marks packages pulled in only as dependencies of the
	// requested patterns; they are type-checked without function bodies
	// and carry no syntax or info maps.
	DepOnly bool
	// Hash fingerprints the package's source (file names and contents).
	// The analysis fact cache keys sealed fact blobs on it: a blob
	// sealed against one hash is stale for any other.
	Hash string

	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// Program is a set of loaded packages sharing one FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package // target packages, in go list order
	// SrcRoot, when set, names a GOPATH-style source root (an
	// analysistest testdata/src directory): imports that go list cannot
	// resolve are looked up as SrcRoot/<importpath> ad-hoc packages, so
	// multi-package fixtures can import their siblings by bare path.
	SrcRoot string
	byPath  map[string]*types.Package
	dir     string
}

// listedPackage mirrors the `go list -json` fields we consume.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -json` for patterns in dir.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Imports,Standard,DepOnly,Error",
		"--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Pure-Go file sets: the type checker has no C compiler to lean on.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load lists patterns from dir and type-checks every resulting package.
// Packages returns only the pattern-matched (non-DepOnly) packages.
func Load(dir string, patterns []string) (*Program, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*types.Package),
		dir:    dir,
	}
	// `go list -deps` emits dependencies before dependents, so a single
	// forward sweep sees every import already checked.
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if err := prog.check(lp); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// Import implements types.Importer against the already-checked set.
func (p *Program) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := p.byPath[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("load: package %q not in dependency closure", path)
}

// ensure loads path (and its dependency closure) if not yet checked.
func (p *Program) ensure(path string) error {
	if path == "unsafe" {
		return nil
	}
	if _, ok := p.byPath[path]; ok {
		return nil
	}
	// A sibling fixture package under the GOPATH-style source root wins
	// over go list: testdata packages are not addressable by module
	// path, and dependency-fixture bodies must be fully checked so the
	// analyzers can compute facts over them.
	if p.SrcRoot != "" {
		dir := filepath.Join(p.SrcRoot, filepath.FromSlash(path))
		if entries, err := os.ReadDir(dir); err == nil {
			var files []string
			for _, e := range entries {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
					files = append(files, e.Name())
				}
			}
			if len(files) > 0 {
				_, err := p.CheckAdHoc(path, dir, files)
				return err
			}
		}
	}
	listed, err := goList(p.dir, []string{path})
	if err != nil {
		return err
	}
	for _, lp := range listed {
		if lp.Error != nil {
			return fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		lp.DepOnly = true // closure members of an ad-hoc check are deps
		if err := p.check(lp); err != nil {
			return err
		}
	}
	return nil
}

// check parses and type-checks one listed package.
func (p *Program) check(lp *listedPackage) error {
	if lp.ImportPath == "unsafe" {
		p.byPath["unsafe"] = types.Unsafe
		return nil
	}
	if _, done := p.byPath[lp.ImportPath]; done {
		return nil
	}
	var files []*ast.File
	for _, f := range lp.GoFiles {
		af, err := parser.ParseFile(p.Fset, filepath.Join(lp.Dir, f), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parsing %s: %v", filepath.Join(lp.Dir, f), err)
		}
		files = append(files, af)
	}
	tpkg, info, err := p.typeCheck(lp.ImportPath, files, lp.DepOnly)
	if err != nil {
		return err
	}
	p.byPath[lp.ImportPath] = tpkg
	pkg := &Package{
		ImportPath: lp.ImportPath,
		Name:       lp.Name,
		Dir:        lp.Dir,
		GoFiles:    lp.GoFiles,
		Imports:    lp.Imports,
		Standard:   lp.Standard,
		DepOnly:    lp.DepOnly,
		Types:      tpkg,
	}
	if !lp.DepOnly {
		pkg.Syntax = files
		pkg.Info = info
		pkg.Hash = sourceHash(lp.Dir, lp.GoFiles)
		p.Packages = append(p.Packages, pkg)
	}
	return nil
}

// sourceHash fingerprints a package's source files: names and contents
// in sorted order. An unreadable file contributes its error string, so
// the hash still changes when a file vanishes mid-run.
func sourceHash(dir string, goFiles []string) string {
	names := append([]string(nil), goFiles...)
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		io.WriteString(h, name)
		h.Write([]byte{0})
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			io.WriteString(h, err.Error())
		} else {
			h.Write(data)
		}
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func (p *Program) typeCheck(path string, files []*ast.File, depOnly bool) (*types.Package, *types.Info, error) {
	conf := types.Config{
		Importer:         p,
		IgnoreFuncBodies: depOnly,
		FakeImportC:      true,
		// Standard-library sources occasionally trip go/types on exotic
		// constructs when loaded standalone; collect errors for deps and
		// fail only on target packages, where analyzers need full types.
		Error: func(error) {},
	}
	var firstErr error
	if !depOnly {
		conf.Error = func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	var info *types.Info
	if !depOnly {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
			Implicits:  make(map[ast.Node]types.Object),
		}
	}
	conf.Sizes = types.SizesFor("gc", runtime.GOARCH)
	tpkg, err := conf.Check(path, p.Fset, files, info)
	if !depOnly {
		if firstErr != nil {
			return nil, nil, fmt.Errorf("type-checking %s: %v", path, firstErr)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("type-checking %s: %v", path, err)
		}
	}
	return tpkg, info, nil
}

// CheckAdHoc type-checks a directory of Go files that is not part of any
// module (an analysistest testdata package): it parses every listed file,
// loads each import's closure via `go list`, and checks with full bodies
// and info maps. importPath names the resulting package (convention:
// the testdata package name).
func (p *Program) CheckAdHoc(importPath, dir string, filenames []string) (*Package, error) {
	sort.Strings(filenames)
	var files []*ast.File
	for _, f := range filenames {
		af, err := parser.ParseFile(p.Fset, filepath.Join(dir, f), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", filepath.Join(dir, f), err)
		}
		files = append(files, af)
	}
	for _, af := range files {
		for _, imp := range af.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if err := p.ensure(path); err != nil {
				return nil, err
			}
		}
	}
	tpkg, info, err := p.typeCheck(importPath, files, false)
	if err != nil {
		return nil, err
	}
	name := ""
	if len(files) > 0 {
		name = files[0].Name.Name
	}
	// Register so sibling ad-hoc packages (and the fact store) can
	// resolve this package by its import path.
	p.byPath[importPath] = tpkg
	return &Package{
		ImportPath: importPath,
		Name:       name,
		Dir:        dir,
		GoFiles:    filenames,
		Syntax:     files,
		Types:      tpkg,
		Info:       info,
		Hash:       sourceHash(dir, filenames),
	}, nil
}

// NewProgram returns an empty program rooted at dir, for ad-hoc checks.
func NewProgram(dir string) *Program {
	return &Program{
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*types.Package),
		dir:    dir,
	}
}

// compile-time check that importer interfaces stay satisfied.
var _ types.Importer = (*Program)(nil)
