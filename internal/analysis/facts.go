package analysis

// The fact store. Facts cross package boundaries the way upstream
// go/analysis facts do in a save/load driver: every exported fact is
// gob-encoded at export time under a stable object key, and imports
// decode from those blobs. Serializing eagerly — even though a single
// smores-lint process could have passed pointers around in memory —
// buys three properties the tentpole needs: fact types are proven
// gob-round-trippable the moment an analyzer first exports one, the
// per-package blob sets can be cached between runs keyed on the
// loader's source hash (see SealPackage/RestorePackage and the stale
// test), and the analyzers cannot accidentally communicate through
// shared mutable state.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// ErrStaleFacts is returned by Session.RestorePackage when a cached
// fact blob was sealed against a different source hash than the one the
// loader reports now: the dependency changed, so its facts must be
// recomputed, never reused.
var ErrStaleFacts = errors.New("analysis: cached facts are stale (source hash mismatch)")

// objKey returns a stable, serialization-friendly key for an object a
// fact may attach to: package-scope declarations ("o/Name"), methods
// ("m/Type/Name"), and struct fields ("f/Type/Path.To.Field"). Objects
// without a stable path (locals, builtins) report ok=false and cannot
// carry facts.
func objKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	// Package-scope declaration?
	if obj.Pkg().Scope().Lookup(obj.Name()) == obj {
		return "o/" + obj.Name(), true
	}
	// Method?
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			if named := namedOf(recv.Type()); named != nil {
				return "m/" + named.Obj().Name() + "/" + fn.Name(), true
			}
		}
		return "", false
	}
	// Struct field: search the owning package's named structs.
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		scope := obj.Pkg().Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			if path, found := fieldPath(st, v, nil); found {
				return "f/" + name + "/" + strings.Join(path, "."), true
			}
		}
	}
	return "", false
}

// fieldPath locates target within st (descending into nested anonymous
// struct types) and returns the dotted field-name path.
func fieldPath(st *types.Struct, target *types.Var, prefix []string) ([]string, bool) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		path := append(append([]string(nil), prefix...), f.Name())
		if f == target {
			return path, true
		}
		if inner, ok := f.Type().Underlying().(*types.Struct); ok {
			if p, found := fieldPath(inner, target, path); found {
				return p, true
			}
		}
	}
	return nil, false
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// resolveKey is the inverse of objKey within pkg.
func resolveKey(pkg *types.Package, key string) types.Object {
	kind, rest, ok := strings.Cut(key, "/")
	if !ok {
		return nil
	}
	switch kind {
	case "o":
		return pkg.Scope().Lookup(rest)
	case "m":
		tname, mname, ok := strings.Cut(rest, "/")
		if !ok {
			return nil
		}
		tn, _ := pkg.Scope().Lookup(tname).(*types.TypeName)
		if tn == nil {
			return nil
		}
		named, _ := tn.Type().(*types.Named)
		if named == nil {
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == mname {
				return m
			}
		}
	case "f":
		tname, fpath, ok := strings.Cut(rest, "/")
		if !ok {
			return nil
		}
		tn, _ := pkg.Scope().Lookup(tname).(*types.TypeName)
		if tn == nil {
			return nil
		}
		st, _ := tn.Type().Underlying().(*types.Struct)
		parts := strings.Split(fpath, ".")
		var cur *types.Var
		for i, fname := range parts {
			if st == nil {
				return nil
			}
			cur = nil
			for j := 0; j < st.NumFields(); j++ {
				if st.Field(j).Name() == fname {
					cur = st.Field(j)
					break
				}
			}
			if cur == nil {
				return nil
			}
			if i < len(parts)-1 {
				st, _ = cur.Type().Underlying().(*types.Struct)
			}
		}
		return cur
	}
	return nil
}

// factStore holds the sealed (gob-encoded) facts of every analyzed
// package, per analyzer. The empty object key "" holds the package
// fact.
type factStore struct {
	// blobs: analyzer name → package path → object key → gob blob.
	blobs map[string]map[string]map[string][]byte
	// pkgs maps package paths to their type-checker packages, for
	// decoding object keys on import.
	pkgs map[string]*types.Package
	// hashes records the loader source hash each package's facts were
	// computed against (empty when the loader had none).
	hashes map[string]string
}

func newFactStore() *factStore {
	return &factStore{
		blobs:  make(map[string]map[string]map[string][]byte),
		pkgs:   make(map[string]*types.Package),
		hashes: make(map[string]string),
	}
}

func (s *factStore) bucket(analyzer, pkgPath string) map[string][]byte {
	byPkg := s.blobs[analyzer]
	if byPkg == nil {
		byPkg = make(map[string]map[string][]byte)
		s.blobs[analyzer] = byPkg
	}
	b := byPkg[pkgPath]
	if b == nil {
		b = make(map[string][]byte)
		byPkg[pkgPath] = b
	}
	return b
}

// declared reports whether the analyzer declared fact's concrete type.
func declared(a *Analyzer, fact Fact) bool {
	ft := reflect.TypeOf(fact)
	for _, d := range a.FactTypes {
		if reflect.TypeOf(d) == ft {
			return true
		}
	}
	return false
}

func encodeFact(a *Analyzer, fact Fact) ([]byte, error) {
	if fact == nil {
		return nil, fmt.Errorf("nil fact")
	}
	if reflect.TypeOf(fact).Kind() != reflect.Ptr {
		return nil, fmt.Errorf("fact type %T is not a pointer", fact)
	}
	if !declared(a, fact) {
		return nil, fmt.Errorf("fact type %T not declared in %s.FactTypes", fact, a.Name)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		return nil, fmt.Errorf("fact type %T is not gob-serializable: %v", fact, err)
	}
	return buf.Bytes(), nil
}

func decodeFact(blob []byte, fact Fact) error {
	return gob.NewDecoder(bytes.NewReader(blob)).Decode(fact)
}

// export seals one fact. key "" is the package fact.
func (s *factStore) export(a *Analyzer, pkg *types.Package, key string, fact Fact) error {
	blob, err := encodeFact(a, fact)
	if err != nil {
		return err
	}
	s.pkgs[pkg.Path()] = pkg
	s.bucket(a.Name, pkg.Path())[key] = blob
	return nil
}

// lookup decodes the fact for (analyzer, pkg, key) into fact.
func (s *factStore) lookup(a *Analyzer, pkgPath, key string, fact Fact) bool {
	if !declared(a, fact) {
		return false
	}
	byPkg := s.blobs[a.Name]
	if byPkg == nil {
		return false
	}
	blob, ok := byPkg[pkgPath][key]
	if !ok {
		return false
	}
	return decodeFact(blob, fact) == nil
}

// sealedPackage is the serialized form of one package's entire fact set
// across analyzers, exchanged by Session.SealPackage/RestorePackage.
type sealedPackage struct {
	Path string
	Hash string
	// Facts: analyzer name → object key → gob blob.
	Facts map[string]map[string][]byte
}

// seal collects every analyzer's blobs for one package.
func (s *factStore) seal(pkgPath, hash string) ([]byte, error) {
	sp := sealedPackage{Path: pkgPath, Hash: hash, Facts: make(map[string]map[string][]byte)}
	for an, byPkg := range s.blobs {
		if b, ok := byPkg[pkgPath]; ok && len(b) > 0 {
			cp := make(map[string][]byte, len(b))
			for k, v := range b {
				cp[k] = v
			}
			sp.Facts[an] = cp
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// restore installs a sealed blob set for pkg, verifying hash freshness.
func (s *factStore) restore(pkg *types.Package, hash string, blob []byte) error {
	var sp sealedPackage
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&sp); err != nil {
		return fmt.Errorf("analysis: decoding sealed facts: %v", err)
	}
	if sp.Path != pkg.Path() {
		return fmt.Errorf("analysis: sealed facts are for %q, not %q", sp.Path, pkg.Path())
	}
	if sp.Hash != hash {
		return fmt.Errorf("%w: package %s sealed against %.12q, loader reports %.12q",
			ErrStaleFacts, sp.Path, sp.Hash, hash)
	}
	s.pkgs[pkg.Path()] = pkg
	for an, b := range sp.Facts {
		dst := s.bucket(an, pkg.Path())
		for k, v := range b {
			dst[k] = v
		}
	}
	s.hashes[pkg.Path()] = hash
	return nil
}

// allObjectFacts enumerates decoded object facts for one analyzer
// across every sealed package, sorted by (package, key) for
// deterministic iteration.
func (s *factStore) allObjectFacts(a *Analyzer) []ObjectFact {
	byPkg := s.blobs[a.Name]
	var out []ObjectFact
	paths := make([]string, 0, len(byPkg))
	for p := range byPkg {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, path := range paths {
		pkg := s.pkgs[path]
		if pkg == nil {
			continue
		}
		keys := make([]string, 0, len(byPkg[path]))
		for k := range byPkg[path] {
			if k != "" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			obj := resolveKey(pkg, k)
			if obj == nil {
				continue
			}
			fact := newFactOfAny(a, byPkg[path][k])
			if fact == nil {
				continue
			}
			out = append(out, ObjectFact{Object: obj, Fact: fact})
		}
	}
	return out
}

// allPackageFacts enumerates decoded package facts for one analyzer.
func (s *factStore) allPackageFacts(a *Analyzer) []PackageFact {
	byPkg := s.blobs[a.Name]
	var out []PackageFact
	paths := make([]string, 0, len(byPkg))
	for p := range byPkg {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, path := range paths {
		blob, ok := byPkg[path][""]
		if !ok {
			continue
		}
		pkg := s.pkgs[path]
		if pkg == nil {
			continue
		}
		fact := newFactOfAny(a, blob)
		if fact == nil {
			continue
		}
		out = append(out, PackageFact{Package: pkg, Fact: fact})
	}
	return out
}

// newFactOfAny decodes blob into a fresh value of whichever declared
// fact type accepts it. With a single declared type (the common case)
// this is exact; with several, gob's struct-name check disambiguates.
func newFactOfAny(a *Analyzer, blob []byte) Fact {
	for _, d := range a.FactTypes {
		fv := reflect.New(reflect.TypeOf(d).Elem()).Interface().(Fact)
		if decodeFact(blob, fv) == nil {
			return fv
		}
	}
	return nil
}
