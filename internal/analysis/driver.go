package analysis

import (
	"fmt"
	"go/format"
	"go/token"
	"os"
	"sort"

	"smores/internal/analysis/load"
)

// Finding is one diagnostic resolved to concrete file positions —
// the driver-level view the multichecker prints, JSON-encodes, or fixes.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Category string         `json:"category,omitempty"`
	Position token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Message  string         `json:"message"`
	Fixable  bool           `json:"fixable,omitempty"`

	diag Diagnostic
	fset *token.FileSet
}

// String renders the conventional file:line:col: analyzer: message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Column, f.Analyzer, f.Message)
}

// RunPackage applies analyzers to one loaded package and returns the
// findings sorted by position.
func RunPackage(fset *token.FileSet, pkg *load.Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      pkg.Syntax,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			TypesSizes: nil,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			p := fset.Position(d.Pos)
			out = append(out, Finding{
				Analyzer: name,
				Category: d.Category,
				Position: p,
				File:     p.Filename,
				Line:     p.Line,
				Column:   p.Column,
				Message:  d.Message,
				Fixable:  len(d.SuggestedFixes) > 0,
				diag:     d,
				fset:     fset,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", name, pkg.ImportPath, err)
		}
	}
	sortFindings(out)
	return out, nil
}

// Run loads patterns from dir and applies analyzers to every matched
// package.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	prog, err := load.Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, pkg := range prog.Packages {
		fs, err := RunPackage(prog.Fset, pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	sortFindings(all)
	return all, nil
}

func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// byteEdit is a resolved text edit in file-offset space.
type byteEdit struct {
	start, end int
	text       []byte
}

// ApplyFixes applies the first suggested fix of every fixable finding,
// grouped per file, and returns the set of rewritten file names. Edits
// are applied right-to-left so earlier offsets stay valid; overlapping
// edits within one file abort that file with an error.
func ApplyFixes(findings []Finding) ([]string, error) {
	perFile := make(map[string][]byteEdit)
	for _, f := range findings {
		if len(f.diag.SuggestedFixes) == 0 {
			continue
		}
		for _, te := range f.diag.SuggestedFixes[0].TextEdits {
			pos := f.fset.Position(te.Pos)
			end := pos
			if te.End.IsValid() {
				end = f.fset.Position(te.End)
			}
			if end.Filename != pos.Filename {
				return nil, fmt.Errorf("fix for %s spans files", f)
			}
			perFile[pos.Filename] = append(perFile[pos.Filename], byteEdit{pos.Offset, end.Offset, te.NewText})
		}
	}
	var changed []string
	for file, edits := range perFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return changed, err
		}
		fixed, err := applyEdits(src, edits)
		if err != nil {
			return changed, fmt.Errorf("%s: %v", file, err)
		}
		// Refuse to write a file the fixes broke: a failed gofmt here
		// means the edited source no longer parses.
		formatted, ferr := format.Source(fixed)
		if ferr != nil {
			return changed, fmt.Errorf("%s: fixed source does not parse (file left untouched): %v", file, ferr)
		}
		fixed = formatted
		if err := os.WriteFile(file, fixed, 0o644); err != nil {
			return changed, err
		}
		changed = append(changed, file)
	}
	sort.Strings(changed)
	return changed, nil
}

// ApplyFixesToSource applies every finding's first fix for one file to
// an in-memory buffer (the analysistest golden-file path).
func ApplyFixesToSource(src []byte, file string, findings []Finding) ([]byte, error) {
	var edits []byteEdit
	for _, f := range findings {
		if len(f.diag.SuggestedFixes) == 0 {
			continue
		}
		for _, te := range f.diag.SuggestedFixes[0].TextEdits {
			pos := f.fset.Position(te.Pos)
			if pos.Filename != file {
				continue
			}
			end := pos
			if te.End.IsValid() {
				end = f.fset.Position(te.End)
			}
			edits = append(edits, byteEdit{pos.Offset, end.Offset, te.NewText})
		}
	}
	fixed, err := applyEdits(src, edits)
	if err != nil {
		return nil, err
	}
	if formatted, ferr := format.Source(fixed); ferr == nil {
		fixed = formatted
	}
	return fixed, nil
}

// applyEdits applies byte-offset edits to src, rejecting overlaps.
func applyEdits(src []byte, edits []byteEdit) ([]byte, error) {
	// Identical edits (e.g. several fixes inserting the same import at
	// the same point) collapse to one.
	seen := make(map[string]bool, len(edits))
	uniq := edits[:0]
	for _, e := range edits {
		key := fmt.Sprintf("%d:%d:%s", e.start, e.end, e.text)
		if seen[key] {
			continue
		}
		seen[key] = true
		uniq = append(uniq, e)
	}
	edits = uniq
	sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
	for i := 1; i < len(edits); i++ {
		if edits[i].end > edits[i-1].start || edits[i].start == edits[i-1].start {
			return nil, fmt.Errorf("overlapping suggested fixes at offsets %d and %d", edits[i].start, edits[i-1].start)
		}
	}
	out := append([]byte(nil), src...)
	for _, e := range edits {
		if e.start < 0 || e.end > len(out) || e.start > e.end {
			return nil, fmt.Errorf("edit range [%d,%d) out of bounds", e.start, e.end)
		}
		out = append(out[:e.start], append(append([]byte(nil), e.text...), out[e.end:]...)...)
	}
	return out, nil
}
