package analysis

import (
	"fmt"
	"go/format"
	"go/token"
	"go/types"
	"os"
	"sort"

	"smores/internal/analysis/load"
)

// Finding is one diagnostic resolved to concrete file positions —
// the driver-level view the multichecker prints, JSON-encodes, or fixes.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Category string         `json:"category,omitempty"`
	Position token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Message  string         `json:"message"`
	Fixable  bool           `json:"fixable,omitempty"`

	diag Diagnostic
	fset *token.FileSet
}

// String renders the conventional file:line:col: analyzer: message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Column, f.Analyzer, f.Message)
}

// Session is a multi-package, multi-analyzer driver run: it owns the
// fact store and the per-package analyzer results, so facts exported
// while analyzing a dependency are importable when its dependents are
// analyzed, and a `Requires` result is computed once per (analyzer,
// package) no matter how many dependents ask for it. Feed packages in
// dependency order (the go list loader already yields them that way)
// for cross-package facts to flow forward.
type Session struct {
	store   *factStore
	results map[resultKey]interface{}
}

type resultKey struct {
	analyzer *Analyzer
	pkgPath  string
}

// NewSession returns an empty driver session.
func NewSession() *Session {
	return &Session{
		store:   newFactStore(),
		results: make(map[resultKey]interface{}),
	}
}

// expand returns the transitive Requires closure of analyzers in a
// topological order (dependencies first), rejecting cycles.
func expand(analyzers []*Analyzer) ([]*Analyzer, error) {
	var order []*Analyzer
	state := make(map[*Analyzer]int) // 0 unseen, 1 visiting, 2 done
	var visit func(a *Analyzer, path []string) error
	visit = func(a *Analyzer, path []string) error {
		switch state[a] {
		case 1:
			return fmt.Errorf("analyzer dependency cycle: %s -> %s",
				joinPath(path), a.Name)
		case 2:
			return nil
		}
		state[a] = 1
		for _, req := range a.Requires {
			if err := visit(req, append(path, a.Name)); err != nil {
				return err
			}
		}
		state[a] = 2
		order = append(order, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func joinPath(path []string) string {
	out := ""
	for i, p := range path {
		if i > 0 {
			out += " -> "
		}
		out += p
	}
	return out
}

// RunPackage applies analyzers (plus their Requires closure) to one
// loaded package and returns the findings sorted by position. Only
// diagnostics from the requested analyzers are returned; analyzers run
// purely as dependencies stay silent.
func (s *Session) RunPackage(fset *token.FileSet, pkg *load.Package, analyzers []*Analyzer) ([]Finding, error) {
	order, err := expand(analyzers)
	if err != nil {
		return nil, err
	}
	requested := make(map[*Analyzer]bool, len(analyzers))
	for _, a := range analyzers {
		requested[a] = true
	}
	s.store.hashes[pkg.ImportPath] = pkg.Hash

	var out []Finding
	for _, a := range order {
		key := resultKey{a, pkg.ImportPath}
		if _, done := s.results[key]; done && !requested[a] {
			continue // dependency already computed for this package
		}
		a := a
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      pkg.Syntax,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			TypesSizes: nil,
			ResultOf:   make(map[*Analyzer]interface{}, len(a.Requires)),
		}
		for _, req := range a.Requires {
			pass.ResultOf[req] = s.results[resultKey{req, pkg.ImportPath}]
		}
		s.installFactHooks(pass)
		report := requested[a]
		pass.Report = func(d Diagnostic) {
			if !report {
				return
			}
			p := fset.Position(d.Pos)
			out = append(out, Finding{
				Analyzer: a.Name,
				Category: d.Category,
				Position: p,
				File:     p.Filename,
				Line:     p.Line,
				Column:   p.Column,
				Message:  d.Message,
				Fixable:  len(d.SuggestedFixes) > 0,
				diag:     d,
				fset:     fset,
			})
		}
		// A requested analyzer that already ran silently as a dependency
		// runs again here to surface its diagnostics; fact export is
		// idempotent for identical values, so the store stays coherent.
		res, err := a.Run(pass)
		if err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
		}
		s.results[key] = res
	}
	sortFindings(out)
	return out, nil
}

// installFactHooks binds the pass's fact methods to the session store.
func (s *Session) installFactHooks(pass *Pass) {
	a, own := pass.Analyzer, pass.Pkg
	pass.exportObjectFact = func(obj types.Object, fact Fact) error {
		if obj == nil || obj.Pkg() != own {
			return fmt.Errorf("cannot export fact on object outside the package under analysis")
		}
		key, ok := objKey(obj)
		if !ok {
			// Only package-scope declarations, methods, and fields of
			// named structs have stable keys. Anything else (locals,
			// anonymous-struct fields) cannot be referenced from another
			// package, so dropping the fact is harmless: analyzers track
			// intra-package state locally.
			return nil
		}
		return s.store.export(a, own, key, fact)
	}
	pass.importObjectFact = func(obj types.Object, fact Fact) bool {
		if obj == nil || obj.Pkg() == nil {
			return false
		}
		key, ok := objKey(obj)
		if !ok {
			return false
		}
		return s.store.lookup(a, obj.Pkg().Path(), key, fact)
	}
	pass.exportPackageFact = func(fact Fact) error {
		return s.store.export(a, own, "", fact)
	}
	pass.importPackageFact = func(pkg *types.Package, fact Fact) bool {
		if pkg == nil {
			return false
		}
		return s.store.lookup(a, pkg.Path(), "", fact)
	}
	pass.allObjectFacts = func() []ObjectFact { return s.store.allObjectFacts(a) }
	pass.allPackageFacts = func() []PackageFact { return s.store.allPackageFacts(a) }
}

// SealPackage serializes every analyzer's facts for one analyzed
// package into a single blob, keyed to the loader's source hash. The
// blob round-trips through RestorePackage in a later session, so fact
// computation for stable dependencies can be skipped.
func (s *Session) SealPackage(pkgPath string) ([]byte, error) {
	return s.store.seal(pkgPath, s.store.hashes[pkgPath])
}

// RestorePackage installs a previously sealed fact blob for pkg. It
// fails with ErrStaleFacts when pkg's current source hash differs from
// the one the blob was sealed against: stale facts are never reused.
func (s *Session) RestorePackage(pkg *load.Package, blob []byte) error {
	return s.store.restore(pkg.Types, pkg.Hash, blob)
}

// RunPackage applies analyzers to one loaded package in a fresh
// single-package session; cross-package facts do not flow. Kept for
// callers that analyze packages in isolation.
func RunPackage(fset *token.FileSet, pkg *load.Package, analyzers []*Analyzer) ([]Finding, error) {
	return NewSession().RunPackage(fset, pkg, analyzers)
}

// Run loads patterns from dir and applies analyzers to every matched
// package in one session. go list yields dependencies before
// dependents, so each package's facts are sealed before any dependent
// imports them — the load is performed once and shared by the whole
// analyzer suite (the `make lint` runtime budget rests on that).
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	prog, err := load.Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	session := NewSession()
	var all []Finding
	for _, pkg := range prog.Packages {
		fs, err := session.RunPackage(prog.Fset, pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	sortFindings(all)
	return all, nil
}

func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// byteEdit is a resolved text edit in file-offset space.
type byteEdit struct {
	start, end int
	text       []byte
}

// ApplyFixes applies the first suggested fix of every fixable finding,
// grouped per file, and returns the set of rewritten file names. Edits
// are applied right-to-left so earlier offsets stay valid; overlapping
// edits within one file abort that file with an error.
func ApplyFixes(findings []Finding) ([]string, error) {
	perFile := make(map[string][]byteEdit)
	for _, f := range findings {
		if len(f.diag.SuggestedFixes) == 0 {
			continue
		}
		for _, te := range f.diag.SuggestedFixes[0].TextEdits {
			pos := f.fset.Position(te.Pos)
			end := pos
			if te.End.IsValid() {
				end = f.fset.Position(te.End)
			}
			if end.Filename != pos.Filename {
				return nil, fmt.Errorf("fix for %s spans files", f)
			}
			perFile[pos.Filename] = append(perFile[pos.Filename], byteEdit{pos.Offset, end.Offset, te.NewText})
		}
	}
	var changed []string
	for file, edits := range perFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return changed, err
		}
		fixed, err := applyEdits(src, edits)
		if err != nil {
			return changed, fmt.Errorf("%s: %v", file, err)
		}
		// Refuse to write a file the fixes broke: a failed gofmt here
		// means the edited source no longer parses.
		formatted, ferr := format.Source(fixed)
		if ferr != nil {
			return changed, fmt.Errorf("%s: fixed source does not parse (file left untouched): %v", file, ferr)
		}
		fixed = formatted
		if err := os.WriteFile(file, fixed, 0o644); err != nil {
			return changed, err
		}
		changed = append(changed, file)
	}
	sort.Strings(changed)
	return changed, nil
}

// ApplyFixesToSource applies every finding's first fix for one file to
// an in-memory buffer (the analysistest golden-file path).
func ApplyFixesToSource(src []byte, file string, findings []Finding) ([]byte, error) {
	var edits []byteEdit
	for _, f := range findings {
		if len(f.diag.SuggestedFixes) == 0 {
			continue
		}
		for _, te := range f.diag.SuggestedFixes[0].TextEdits {
			pos := f.fset.Position(te.Pos)
			if pos.Filename != file {
				continue
			}
			end := pos
			if te.End.IsValid() {
				end = f.fset.Position(te.End)
			}
			edits = append(edits, byteEdit{pos.Offset, end.Offset, te.NewText})
		}
	}
	fixed, err := applyEdits(src, edits)
	if err != nil {
		return nil, err
	}
	if formatted, ferr := format.Source(fixed); ferr == nil {
		fixed = formatted
	}
	return fixed, nil
}

// applyEdits applies byte-offset edits to src, rejecting overlaps.
func applyEdits(src []byte, edits []byteEdit) ([]byte, error) {
	// Identical edits (e.g. several fixes inserting the same import at
	// the same point) collapse to one.
	seen := make(map[string]bool, len(edits))
	uniq := edits[:0]
	for _, e := range edits {
		key := fmt.Sprintf("%d:%d:%s", e.start, e.end, e.text)
		if seen[key] {
			continue
		}
		seen[key] = true
		uniq = append(uniq, e)
	}
	edits = uniq
	sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
	for i := 1; i < len(edits); i++ {
		if edits[i].end > edits[i-1].start || edits[i].start == edits[i-1].start {
			return nil, fmt.Errorf("overlapping suggested fixes at offsets %d and %d", edits[i].start, edits[i-1].start)
		}
	}
	out := append([]byte(nil), src...)
	for _, e := range edits {
		if e.start < 0 || e.end > len(out) || e.start > e.end {
			return nil, fmt.Errorf("edit range [%d,%d) out of bounds", e.start, e.end)
		}
		out = append(out[:e.start], append(append([]byte(nil), e.text...), out[e.end:]...)...)
	}
	return out, nil
}
