// Package analysistest mirrors golang.org/x/tools/go/analysis/analysistest
// for the in-repo analysis subset: it runs one analyzer over a
// GOPATH-style testdata tree (testdata/src/<pkg>/*.go), matching reported
// diagnostics against `// want "regexp"` comments, and can verify
// suggested fixes against committed .golden files.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"smores/internal/analysis"
	"smores/internal/analysis/load"
)

// TestData returns the absolute path of the caller package's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run analyzes the named packages under dir/src and checks diagnostics
// against want comments. It returns the findings for further assertions.
//
// All named packages share one loader program and one driver session:
// a fixture package may import an earlier-listed sibling by its bare
// path, and facts the analyzer exports while running on that sibling
// are importable when the dependent is analyzed — list dependency
// packages first, exactly as a real driver feeds packages in
// dependency order.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) []analysis.Finding {
	t.Helper()
	return runAll(t, dir, a, pkgs, false)
}

// RunWithSuggestedFixes is Run plus golden-file verification: after
// matching diagnostics, every file that received fixes is rewritten in
// memory and compared byte-for-byte with <file>.golden.
func RunWithSuggestedFixes(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) []analysis.Finding {
	t.Helper()
	return runAll(t, dir, a, pkgs, true)
}

// RunExpectingNoWants analyzes the named packages in a fresh session
// but skips want-comment matching and golden files, returning the raw
// findings. It exists for negative fact tests: run only the dependent
// package of a cross-package fixture and assert zero findings, proving
// the fixture's want comments hinge on facts from the dependency rather
// than matching vacuously.
func RunExpectingNoWants(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) []analysis.Finding {
	t.Helper()
	return run(t, dir, a, pkgs, false, false)
}

func runAll(t *testing.T, dir string, a *analysis.Analyzer, pkgs []string, fixes bool) []analysis.Finding {
	t.Helper()
	return run(t, dir, a, pkgs, fixes, true)
}

func run(t *testing.T, dir string, a *analysis.Analyzer, pkgs []string, fixes, matchWants bool) []analysis.Finding {
	t.Helper()
	srcRoot := filepath.Join(dir, "src")
	prog := load.NewProgram(srcRoot)
	prog.SrcRoot = srcRoot
	session := analysis.NewSession()
	var all []analysis.Finding
	for _, pkg := range pkgs {
		all = append(all, runOne(t, prog, session, srcRoot, a, pkg, fixes, matchWants)...)
	}
	return all
}

func runOne(t *testing.T, prog *load.Program, session *analysis.Session, srcRoot string, a *analysis.Analyzer, pkg string, fixes, matchWants bool) []analysis.Finding {
	t.Helper()
	pkgDir := filepath.Join(srcRoot, pkg)
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		t.Fatalf("%s: %v", pkg, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		t.Fatalf("%s: no Go files in %s", pkg, pkgDir)
	}
	loaded, err := prog.CheckAdHoc(pkg, pkgDir, files)
	if err != nil {
		t.Fatalf("%s: %v", pkg, err)
	}
	findings, err := session.RunPackage(prog.Fset, loaded, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("%s: analyzer: %v", pkg, err)
	}
	if !matchWants {
		return findings
	}

	wants := make(map[string][]*wantSpec) // file:line → specs
	for _, fname := range files {
		full := filepath.Join(pkgDir, fname)
		src, err := os.ReadFile(full)
		if err != nil {
			t.Fatal(err)
		}
		for line, specs := range parseWants(t, full, string(src)) {
			key := fmt.Sprintf("%s:%d", full, line)
			wants[key] = append(wants[key], specs...)
		}
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.File, f.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pkg, f)
		}
	}
	for key, specs := range wants {
		for _, w := range specs {
			if !w.matched {
				t.Errorf("%s: no diagnostic at %s matching %q", pkg, key, w.re)
			}
		}
	}

	if fixes {
		checkFixes(t, pkg, pkgDir, files, findings)
	}
	return findings
}

func checkFixes(t *testing.T, pkg, pkgDir string, files []string, findings []analysis.Finding) {
	t.Helper()
	for _, fname := range files {
		full := filepath.Join(pkgDir, fname)
		goldenPath := full + ".golden"
		golden, err := os.ReadFile(goldenPath)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		src, err := os.ReadFile(full)
		if err != nil {
			t.Fatal(err)
		}
		fixed, err := analysis.ApplyFixesToSource(src, full, findings)
		if err != nil {
			t.Errorf("%s: applying fixes to %s: %v", pkg, fname, err)
			continue
		}
		if string(fixed) != string(golden) {
			t.Errorf("%s: fixed %s does not match %s:\n--- got ---\n%s\n--- want ---\n%s",
				pkg, fname, filepath.Base(goldenPath), fixed, golden)
		}
	}
}

type wantSpec struct {
	re      *regexp.Regexp
	matched bool
}

// parseWants extracts `// want "re" "re"...` comments per source line.
func parseWants(t *testing.T, file, src string) map[int][]*wantSpec {
	t.Helper()
	out := make(map[int][]*wantSpec)
	for i, line := range strings.Split(src, "\n") {
		idx := strings.Index(line, "// want ")
		if idx < 0 {
			continue
		}
		rest := strings.TrimSpace(line[idx+len("// want "):])
		for rest != "" {
			lit, remainder, err := scanStringLit(rest)
			if err != nil {
				t.Fatalf("%s:%d: malformed want comment: %v", file, i+1, err)
			}
			re, err := regexp.Compile(lit)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", file, i+1, lit, err)
			}
			out[i+1] = append(out[i+1], &wantSpec{re: re})
			rest = strings.TrimSpace(remainder)
		}
	}
	return out
}

// scanStringLit consumes one Go string literal (quoted or backquoted)
// from the front of s.
func scanStringLit(s string) (value, rest string, err error) {
	if s == "" {
		return "", "", fmt.Errorf("empty literal")
	}
	quote := s[0]
	if quote != '"' && quote != '`' {
		return "", "", fmt.Errorf("expected string literal, got %q", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' && quote == '"' {
			i++
			continue
		}
		if s[i] == quote {
			lit := s[:i+1]
			v, err := strconv.Unquote(lit)
			if err != nil {
				return "", "", err
			}
			return v, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated string literal in %q", s)
}
