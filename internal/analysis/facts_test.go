package analysis_test

// Tests for the fact plumbing itself: a two-package fixture proving an
// annotation discovered in package a propagates to a caller in package
// b, a serialization round-trip that installs a's sealed facts into a
// fresh session without re-running the analyzer, and the stale-fact
// invalidation contract (a changed dependency's cached facts are
// rejected, never reused).

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smores/internal/analysis"
	"smores/internal/analysis/load"
)

// markFact tags functions whose doc comment carries "MARK".
type markFact struct{ Tag string }

func (*markFact) AFact() {}

// pkgCountFact is a package-level fact counting marked functions.
type pkgCountFact struct{ N int }

func (*pkgCountFact) AFact() {}

// newMarkAnalyzer exports markFact on every function whose name starts
// with "Marked", and reports every call to a function carrying an
// imported markFact. The report only fires for cross-package callees
// when facts flow through the session, so a finding in package b is
// positive proof of the plumbing.
func newMarkAnalyzer() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name:      "marktest",
		Doc:       "test analyzer exercising fact export/import",
		FactTypes: []analysis.Fact{(*markFact)(nil), (*pkgCountFact)(nil)},
	}
	a.Run = func(pass *analysis.Pass) (interface{}, error) {
		n := 0
		scope := pass.Pkg.Scope()
		for _, name := range scope.Names() {
			if strings.HasPrefix(name, "Marked") {
				pass.ExportObjectFact(scope.Lookup(name), &markFact{Tag: name})
				n++
			}
		}
		if n > 0 {
			pass.ExportPackageFact(&pkgCountFact{N: n})
		}
		// Report uses of marked functions, local or imported.
		for ident, obj := range pass.TypesInfo.Uses {
			var fact markFact
			if pass.ImportObjectFact(obj, &fact) {
				pass.Reportf(ident.Pos(), "call of marked function %s", fact.Tag)
			}
		}
		return nil, nil
	}
	return a
}

func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for name, src := range files {
		full := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func checkPkg(t *testing.T, prog *load.Program, path string) *load.Package {
	t.Helper()
	dir := filepath.Join(prog.SrcRoot, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	pkg, err := prog.CheckAdHoc(path, dir, files)
	if err != nil {
		t.Fatalf("checking %s: %v", path, err)
	}
	return pkg
}

const pkgASrc = `package a

func Marked() int { return 1 }

func Plain() int { return 2 }
`

const pkgBSrc = `package b

import "a"

func Use() int { return a.Marked() + a.Plain() }
`

func newFixture(t *testing.T, aSrc string) (*load.Program, string) {
	t.Helper()
	root := t.TempDir()
	srcRoot := filepath.Join(root, "src")
	writeTree(t, srcRoot, map[string]string{
		"a/a.go": aSrc,
		"b/b.go": pkgBSrc,
	})
	prog := load.NewProgram(srcRoot)
	prog.SrcRoot = srcRoot
	return prog, srcRoot
}

// TestObjectFactCrossPackage is the canonical propagation proof: the
// analyzer marks a.Marked while analyzing package a, and the finding
// appears at the call site in package b. Removing the fact plumbing
// (or running b in a fresh session) silences the b finding.
func TestObjectFactCrossPackage(t *testing.T) {
	prog, _ := newFixture(t, pkgASrc)
	an := newMarkAnalyzer()
	session := analysis.NewSession()

	pa := checkPkg(t, prog, "a")
	pb := checkPkg(t, prog, "b")

	if _, err := session.RunPackage(prog.Fset, pa, []*analysis.Analyzer{an}); err != nil {
		t.Fatal(err)
	}
	findings, err := session.RunPackage(prog.Fset, pb, []*analysis.Analyzer{an})
	if err != nil {
		t.Fatal(err)
	}
	if !hasFinding(findings, "call of marked function Marked") {
		t.Errorf("fact did not propagate from a to b; findings: %v", findings)
	}

	// Package fact visible from b too.
	var pc pkgCountFact
	ranB := false
	probe := &analysis.Analyzer{
		Name:      "probe",
		Doc:       "asserts package facts cross the boundary",
		FactTypes: []analysis.Fact{(*pkgCountFact)(nil)},
	}
	probe.Run = func(pass *analysis.Pass) (interface{}, error) {
		ranB = pass.ImportPackageFact(pa.Types, &pc)
		return nil, nil
	}
	// Same session: probe shares marktest's fact type but not its
	// store bucket, so this must come back false — facts are
	// namespaced per analyzer.
	if _, err := session.RunPackage(prog.Fset, pb, []*analysis.Analyzer{probe}); err != nil {
		t.Fatal(err)
	}
	if ranB {
		t.Error("package fact leaked across analyzer namespaces")
	}

	// A fresh session without package a analyzed: no propagation.
	fresh := analysis.NewSession()
	findings, err = fresh.RunPackage(prog.Fset, pb, []*analysis.Analyzer{newMarkAnalyzer()})
	if err != nil {
		t.Fatal(err)
	}
	if hasFinding(findings, "call of marked function Marked") {
		t.Error("finding reported without facts from package a — plumbing test is vacuous")
	}
}

// TestSealedFactsRestore proves the serialized path end to end: facts
// sealed in one session are restored into a brand-new session (no
// analyzer run on package a at all) and still drive the b finding.
func TestSealedFactsRestore(t *testing.T) {
	prog, _ := newFixture(t, pkgASrc)
	an := newMarkAnalyzer()

	s1 := analysis.NewSession()
	pa := checkPkg(t, prog, "a")
	if _, err := s1.RunPackage(prog.Fset, pa, []*analysis.Analyzer{an}); err != nil {
		t.Fatal(err)
	}
	blob, err := s1.SealPackage("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) == 0 {
		t.Fatal("sealed blob is empty")
	}

	// Fresh world: reload the identical sources, restore the blob, run
	// only package b.
	prog2, _ := newFixture(t, pkgASrc)
	pa2 := checkPkg(t, prog2, "a")
	pb2 := checkPkg(t, prog2, "b")
	s2 := analysis.NewSession()
	if err := s2.RestorePackage(pa2, blob); err != nil {
		t.Fatalf("restoring sealed facts: %v", err)
	}
	findings, err := s2.RunPackage(prog2.Fset, pb2, []*analysis.Analyzer{newMarkAnalyzer()})
	if err != nil {
		t.Fatal(err)
	}
	if !hasFinding(findings, "call of marked function Marked") {
		t.Errorf("restored facts did not drive the cross-package finding; findings: %v", findings)
	}
}

// TestStaleFactsRejected: a sealed blob for one version of package a
// must not install against a modified version.
func TestStaleFactsRejected(t *testing.T) {
	prog, _ := newFixture(t, pkgASrc)
	an := newMarkAnalyzer()
	s1 := analysis.NewSession()
	pa := checkPkg(t, prog, "a")
	if _, err := s1.RunPackage(prog.Fset, pa, []*analysis.Analyzer{an}); err != nil {
		t.Fatal(err)
	}
	blob, err := s1.SealPackage("a")
	if err != nil {
		t.Fatal(err)
	}

	// Same package path, changed source: Marked gained a new body.
	prog2, _ := newFixture(t, strings.Replace(pkgASrc, "return 1", "return 3", 1))
	pa2 := checkPkg(t, prog2, "a")
	s2 := analysis.NewSession()
	err = s2.RestorePackage(pa2, blob)
	if !errors.Is(err, analysis.ErrStaleFacts) {
		t.Fatalf("restoring against modified source: err = %v, want ErrStaleFacts", err)
	}
}

// TestRequiresResultOf exercises the dependency plumbing: a required
// analyzer's result is visible in ResultOf, required analyzers stay
// silent unless requested, and cycles are rejected.
func TestRequiresResultOf(t *testing.T) {
	prog, _ := newFixture(t, pkgASrc)
	pa := checkPkg(t, prog, "a")

	base := &analysis.Analyzer{
		Name: "base",
		Doc:  "produces a result and a diagnostic",
	}
	base.Run = func(pass *analysis.Pass) (interface{}, error) {
		pass.Reportf(pass.Files[0].Pos(), "base diagnostic")
		return 42, nil
	}
	var got interface{}
	user := &analysis.Analyzer{
		Name:     "user",
		Doc:      "consumes base's result",
		Requires: []*analysis.Analyzer{base},
	}
	user.Run = func(pass *analysis.Pass) (interface{}, error) {
		got = pass.ResultOf[base]
		return nil, nil
	}

	findings, err := analysis.NewSession().RunPackage(prog.Fset, pa, []*analysis.Analyzer{user})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("ResultOf[base] = %v, want 42", got)
	}
	if hasFinding(findings, "base diagnostic") {
		t.Error("diagnostics of a merely-required analyzer were reported")
	}

	// Requesting both surfaces base's diagnostics too.
	findings, err = analysis.NewSession().RunPackage(prog.Fset, pa, []*analysis.Analyzer{base, user})
	if err != nil {
		t.Fatal(err)
	}
	if !hasFinding(findings, "base diagnostic") {
		t.Error("requested analyzer's diagnostics missing")
	}

	// Cycles are a hard error.
	x := &analysis.Analyzer{Name: "x", Doc: "cyclic"}
	y := &analysis.Analyzer{Name: "y", Doc: "cyclic", Requires: []*analysis.Analyzer{x}}
	x.Requires = []*analysis.Analyzer{y}
	x.Run = func(*analysis.Pass) (interface{}, error) { return nil, nil }
	y.Run = x.Run
	if _, err := analysis.NewSession().RunPackage(prog.Fset, pa, []*analysis.Analyzer{x}); err == nil {
		t.Error("dependency cycle not rejected")
	}
}

// TestUndeclaredFactRejected: exporting a fact type missing from
// FactTypes is an analyzer bug and must fail loudly.
func TestUndeclaredFactRejected(t *testing.T) {
	prog, _ := newFixture(t, pkgASrc)
	pa := checkPkg(t, prog, "a")
	bad := &analysis.Analyzer{Name: "bad", Doc: "exports an undeclared fact"}
	bad.Run = func(pass *analysis.Pass) (interface{}, error) {
		defer func() {
			if recover() == nil {
				t.Error("export of undeclared fact type did not panic")
			}
		}()
		pass.ExportObjectFact(pass.Pkg.Scope().Lookup("Marked"), &markFact{})
		return nil, nil
	}
	if _, err := analysis.NewSession().RunPackage(prog.Fset, pa, []*analysis.Analyzer{bad}); err != nil {
		t.Fatal(err)
	}
}

func hasFinding(fs []analysis.Finding, substr string) bool {
	for _, f := range fs {
		if strings.Contains(f.Message, substr) {
			return true
		}
	}
	return false
}
