// Package floats holds the approved float64 comparison helpers. The
// floateq analyzer forbids raw == / != on floating-point energy values
// everywhere else in the tree: a raw comparison does not say whether the
// author meant "bit-identical" (the differential gates: event-skip vs.
// legacy loop, profiler on vs. off) or "close enough" (report
// tolerances), and the two have opposite failure modes. Routing every
// comparison through this package makes the intent explicit and
// greppable.
package floats

import "math"

// Eq reports exact (bit-level, IEEE ==) equality. Use it where the
// system guarantees identical floating-point computations — the
// bit-identical differential tests and cache-consistency checks. NaN
// compares unequal to everything, including itself, exactly like ==.
func Eq(a, b float64) bool { return a == b }

// IsZero reports whether x is exactly ±0. Use it for "was anything
// accumulated at all" checks on counters that only ever receive exact
// additions of zero or nonzero terms.
func IsZero(x float64) bool { return x == 0 }

// Near reports |a-b| <= tol, an absolute-tolerance comparison for
// quantities with a natural scale (fJ totals, fractions of one).
func Near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// NearRel reports closeness under a relative tolerance with an absolute
// floor: |a-b| <= tol*max(|a|,|b|, floor). This is the conservation-test
// shape used across the profiler reconciliation suites.
func NearRel(a, b, tol, floor float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	scale = math.Max(scale, floor)
	return math.Abs(a-b) <= tol*scale
}
