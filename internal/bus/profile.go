package bus

// Energy attribution: the channel's accounting paths feed every
// femtojoule they add to Stats into an obs.Profile keyed by
// (phase × codec × wire × level × transition class).
//
// In exact-data mode each transmitted symbol is attributed individually
// with its real voltage-step class; in expected mode the closed-form
// energies land in aggregate cells (wire="agg", level="mix",
// transition="mix"). Either way the profiler's TotalEnergy reconciles
// with Stats.TotalEnergy to float round-off — a property the
// conservation tests enforce for every policy × scheme combination.
//
// Phase partition of Stats:
//
//	WireEnergy      = mta-payload + dbi-wire + sparse-payload + idle-shift
//	PostambleEnergy = postamble
//	LogicEnergy     = logic
//	ReplayEnergy    = replay (retransmission wire+logic, see hook.go)

import (
	"smores/internal/mta"
	"smores/internal/obs"
	"smores/internal/pam4"
)

// Profile returns the channel's attached energy profiler (nil when
// attribution is disabled).
func (ch *Channel) Profile() *obs.Profile { return ch.prof }

// profileColumn attributes one transmitted column, symbol by symbol.
// The caller guarantees ch.prof is non-nil. Rules:
//
//   - The group's ninth wire is rerouted to PhaseDBIWire (MSB traffic in
//     MTA bursts, swap metadata in sparse bursts) — except during the
//     idle-shift step, which is a seam event on whatever wires need it.
//   - A sparse or idle-shift symbol following an L3 was rewritten by the
//     level-shifting rule and is classed TransSeam; everything else gets
//     its ΔV magnitude class.
func (ch *Channel) profileColumn(g int, prev *mta.GroupState, col mta.Column, ph obs.Phase, codec int) {
	seamPhase := ph == obs.PhaseSparsePayload || ph == obs.PhaseIdleShift
	base := g * mta.GroupWires
	for w, l := range col {
		wph := ph
		if w == mta.DBIWire && ph != obs.PhaseIdleShift {
			wph = obs.PhaseDBIWire
		}
		tc := obs.TransOfDelta(pam4.Delta(prev[w], l))
		if seamPhase && prev[w] == pam4.L3 {
			tc = obs.TransSeam
		}
		ch.prof.AddSymbol(wph, codec, base+w, int(l), tc, ch.levelE[l])
	}
}

// profilePostamble attributes one group's L1 postamble drive in exact
// mode: per wire, the first UI carries the entry transition from the
// trailing level, the remaining UIs hold L1 (0ΔV). Every wire-UI costs
// the calibrated postamble drive energy. The caller guarantees ch.prof
// is non-nil and passes the pre-postamble trailing state.
func (ch *Channel) profilePostamble(g int, prev *mta.GroupState) {
	e := ch.model.PostambleWireUIEnergy()
	base := g * mta.GroupWires
	for w, l := range prev {
		tc := obs.TransOfDelta(pam4.Delta(l, mta.PostambleLevel))
		ch.prof.AddSymbol(obs.PhasePostamble, obs.ProfileCodecMTA,
			base+w, int(mta.PostambleLevel), tc, e)
		for ui := 1; ui < int(PostambleUIs()); ui++ {
			ch.prof.AddSymbol(obs.PhasePostamble, obs.ProfileCodecMTA,
				base+w, int(mta.PostambleLevel), obs.Trans0DV, e)
		}
	}
}
