package bus

import (
	"math/rand"
	"testing"
)

// TestLevelShiftedIdleAvoidsViolations: the optimized-MTA channel may go
// straight to idle after an MTA burst without a postamble — the shifted
// step protects the seam.
func TestLevelShiftedIdleAvoidsViolations(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	ch := New(Config{ExactData: true, LevelShiftedIdle: true})
	for i := 0; i < 300; i++ {
		if err := ch.SendBurst(randomSector(rng), 0); err != nil {
			t.Fatal(err)
		}
		ch.Idle(int64(rng.Intn(12) + 1)) // no postamble
	}
	st := ch.Stats()
	if st.Violations != 0 {
		t.Fatalf("%d violations with level-shifted idle", st.Violations)
	}
	if st.Postambles != 0 || st.PostambleEnergy != 0 {
		t.Error("no postambles should have been driven")
	}
}

// TestLevelShiftedIdleCheaperThanPostamble: the hypothetical optimized
// MTA transition must cost far less than the driven postamble.
func TestLevelShiftedIdleCheaperThanPostamble(t *testing.T) {
	run := func(shift bool) float64 {
		ch := New(Config{LevelShiftedIdle: shift})
		for i := 0; i < 200; i++ {
			if err := ch.SendBurst(nil, 0); err != nil {
				t.Fatal(err)
			}
			if !shift {
				ch.Postamble()
			}
			ch.Idle(4)
		}
		return ch.Stats().PerBit()
	}
	withPost := run(false)
	shifted := run(true)
	if shifted >= withPost {
		t.Fatalf("shifted idle (%.1f) not cheaper than postamble (%.1f)", shifted, withPost)
	}
	// The paper's Fig. 6 framing: the postamble adds ≈325 fJ/bit; the
	// shifted transition should recover nearly all of it.
	if withPost-shifted < 250 {
		t.Errorf("shifted idle only saved %.1f fJ/bit of the ≈325 postamble adder", withPost-shifted)
	}
}

// TestShiftedIdleExpectedMatchesExact validates the expected-mode formula
// for the shifted-step energy against real streams.
func TestShiftedIdleExpectedMatchesExact(t *testing.T) {
	run := func(exact bool, seed int64) Stats {
		rng := rand.New(rand.NewSource(seed))
		ch := New(Config{ExactData: exact, LevelShiftedIdle: true})
		for i := 0; i < 4000; i++ {
			var data []byte
			if exact {
				data = randomSector(rng)
			} else {
				_ = randomSector(rng)
			}
			if err := ch.SendBurst(data, 0); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(3) == 0 {
				ch.Idle(6)
			}
		}
		return ch.Stats()
	}
	exact := run(true, 7)
	expect := run(false, 7)
	if exact.Violations != 0 {
		t.Fatalf("%d violations", exact.Violations)
	}
	diff := (exact.PerBit() - expect.PerBit()) / expect.PerBit()
	if diff > 0.01 || diff < -0.01 {
		t.Errorf("exact %.1f vs expected %.1f fJ/bit", exact.PerBit(), expect.PerBit())
	}
}
