package bus

// Live telemetry for the channel: the same quantities as Stats, driven
// from the same accounting paths, but exported through the obs registry
// so a running simulation can be scraped concurrently. All handles are
// nil when Config.Obs is unset, and every obs instrument method is
// nil-safe, so the uninstrumented hot path pays only predictable nil
// checks.

import (
	"smores/internal/core"
	"smores/internal/obs"
)

// busMetrics holds the channel's resolved instrument handles.
type busMetrics struct {
	// on gates the per-operation mirroring blocks so the disabled path
	// costs one predictable branch.
	on             bool
	dataBits       *obs.Counter
	wireEnergy     *obs.FloatCounter
	postambleJ     *obs.FloatCounter
	logicEnergy    *obs.FloatCounter
	replayEnergy   *obs.FloatCounter
	replays        *obs.Counter
	postambles     *obs.Counter
	busyUIs        *obs.Counter
	idleUIs        *obs.Counter
	violations     *obs.Counter
	seams          *obs.Counter
	burstsByCode   [core.MaxSparseSymbols + 1]*obs.Counter
	burstOverflows *obs.Counter
}

// newBusMetrics resolves every handle once; the hot path never touches
// the registry again.
func newBusMetrics(reg *obs.Registry, labels []obs.Label) *busMetrics {
	if reg == nil {
		return &busMetrics{}
	}
	m := &busMetrics{
		on: true,
		dataBits: reg.Counter("smores_bus_data_bits_total",
			"Payload bits transferred over the channel.", labels...),
		wireEnergy: reg.FloatCounter("smores_bus_wire_energy_femtojoules_total",
			"Integrated wire drive energy.", labels...),
		postambleJ: reg.FloatCounter("smores_bus_postamble_energy_femtojoules_total",
			"Energy spent driving L1 postambles.", labels...),
		logicEnergy: reg.FloatCounter("smores_bus_logic_energy_femtojoules_total",
			"Encoder/decoder logic energy.", labels...),
		replayEnergy: reg.FloatCounter("smores_bus_replay_energy_femtojoules_total",
			"Wire+logic energy burned by EDC-triggered burst retransmissions.", labels...),
		replays: reg.Counter("smores_bus_replay_bursts_total",
			"EDC-triggered burst retransmissions.", labels...),
		postambles: reg.Counter("smores_bus_postambles_total",
			"Driven L1 postambles.", labels...),
		busyUIs: reg.Counter("smores_bus_busy_uis_total",
			"Unit intervals the wires spent transferring or driving postambles.", labels...),
		idleUIs: reg.Counter("smores_bus_idle_uis_total",
			"Unit intervals the wires spent parked at L0.", labels...),
		violations: reg.Counter("smores_bus_transition_violations_total",
			"Observed transitions exceeding the 2-delta-V cap (invariant: 0).", labels...),
		seams: reg.Counter("smores_bus_level_shift_seams_total",
			"Level-shifted idle transitions (optimized-MTA seam handling).", labels...),
		burstOverflows: reg.Counter("smores_bus_bursts_unknown_codec_total",
			"Bursts whose code length fell outside the known family (invariant: 0).", labels...),
	}
	for n := range m.burstsByCode {
		if n != 0 && n < core.MinSparseSymbols {
			continue
		}
		ls := append(append([]obs.Label(nil), labels...),
			obs.L("codec", core.CodecLabel(n)))
		m.burstsByCode[n] = reg.Counter("smores_bus_bursts_total",
			"Bursts transferred, labeled by codec.", ls...)
	}
	return m
}

// burst counts one burst of the given code length.
func (m *busMetrics) burst(codeLength int) {
	if m == nil {
		return
	}
	if codeLength >= 0 && codeLength < len(m.burstsByCode) && m.burstsByCode[codeLength] != nil {
		m.burstsByCode[codeLength].Inc()
		return
	}
	m.burstOverflows.Inc()
}
