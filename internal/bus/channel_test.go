package bus

import (
	"math"
	"math/rand"
	"testing"

	"smores/internal/core"
	"smores/internal/mta"
	"smores/internal/pam4"
)

func approx(t *testing.T, name string, got, want, tolPct float64) {
	t.Helper()
	if math.Abs(got-want)/math.Abs(want)*100 > tolPct {
		t.Errorf("%s = %g, want %g (±%g%%)", name, got, want, tolPct)
	}
}

func randomSector(rng *rand.Rand) []byte {
	b := make([]byte, BurstBytes)
	rng.Read(b)
	return b
}

func TestChannelDefaults(t *testing.T) {
	ch := New(Config{MTALogicPerBit: -1, SparseLogicPerBit: -1})
	if ch.Family() == nil || ch.MTACodec() == nil {
		t.Fatal("defaults not filled")
	}
	if ch.NeedsPostamble() {
		t.Error("fresh channel should not need a postamble")
	}
	if ch.Stats().PerBit() != 0 || ch.Stats().Utilization() != 0 {
		t.Error("fresh stats should be zero")
	}
}

// TestMTAPerBitWithPostamble reproduces the paper's §IV-B numbers in
// expected mode: an isolated MTA burst plus postamble costs ≈900 fJ/bit
// on the wire; back-to-back MTA costs ≈575 fJ/bit.
func TestMTAPerBitWithPostamble(t *testing.T) {
	ch := New(Config{}) // zero logic energy: wire-only comparison
	if err := ch.SendBurst(nil, 0); err != nil {
		t.Fatal(err)
	}
	st := ch.Stats()
	approx(t, "MTA wire-only fJ/bit", st.PerBit(), 574.8, 2.5)

	if !ch.NeedsPostamble() {
		t.Fatal("MTA burst into idle must need a postamble")
	}
	ch.Postamble()
	st = ch.Stats()
	approx(t, "MTA+postamble fJ/bit", st.PerBit(), 900.2, 2.0)
	if st.Postambles != 1 {
		t.Errorf("postambles = %d", st.Postambles)
	}
}

func TestSparseBurstPerBit(t *testing.T) {
	ch := New(Config{})
	if err := ch.SendBurst(nil, 3); err != nil {
		t.Fatal(err)
	}
	// Wire-only 4b3s-3/DBI expectation ≈ 425.3 fJ/bit.
	approx(t, "4b3s-3/DBI fJ/bit", ch.Stats().PerBit(), 425.3, 1.0)
	if ch.NeedsPostamble() {
		t.Error("sparse burst must not need a postamble")
	}
	if ch.Stats().BusyUIs != 12 {
		t.Errorf("BusyUIs = %d, want 12", ch.Stats().BusyUIs)
	}
}

func TestLogicEnergyAccounting(t *testing.T) {
	ch := New(Config{MTALogicPerBit: -1, SparseLogicPerBit: -1})
	if err := ch.SendBurst(nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := ch.SendBurst(nil, 3); err != nil {
		t.Fatal(err)
	}
	want := BurstBytes*8*DefaultMTALogicPerBit + BurstBytes*8*DefaultSparseLogicPerBit
	approx(t, "logic energy", ch.Stats().LogicEnergy, want, 1e-9)
}

func TestUnknownCodeLength(t *testing.T) {
	ch := New(Config{})
	if err := ch.SendBurst(nil, 2); err == nil {
		t.Error("length 2 should be rejected (not in family)")
	}
	if err := ch.SendBurst(nil, 9); err == nil {
		t.Error("length 9 should be rejected")
	}
}

func TestExactModeNeedsData(t *testing.T) {
	ch := New(Config{ExactData: true})
	if err := ch.SendBurst(nil, 0); err == nil {
		t.Error("exact MTA burst without data must error")
	}
	if err := ch.SendBurst(make([]byte, 16), 3); err == nil {
		t.Error("exact sparse burst with short data must error")
	}
}

// TestExactNo3DVUnderRandomInterleaving is the channel-level transition
// invariant: arbitrary mixes of MTA bursts, sparse bursts of every length,
// postambles and idles never produce a 3ΔV step on an encoded wire.
func TestExactNo3DVUnderRandomInterleaving(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ch := New(Config{ExactData: true})
	lengths := []int{0, 0, 0, 3, 4, 5, 6, 7, 8} // bias toward MTA
	for step := 0; step < 3000; step++ {
		switch rng.Intn(4) {
		case 0, 1:
			n := lengths[rng.Intn(len(lengths))]
			if err := ch.SendBurst(randomSector(rng), n); err != nil {
				t.Fatal(err)
			}
		case 2:
			// Going idle requires a postamble after an MTA burst.
			if ch.NeedsPostamble() {
				ch.Postamble()
			}
			ch.Idle(int64(rng.Intn(40) + 1))
		case 3:
			if err := ch.SendBurst(randomSector(rng), 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if v := ch.Stats().Violations; v != 0 {
		t.Fatalf("%d max-transition violations on encoded wires", v)
	}
	if ch.Stats().DataBits == 0 {
		t.Fatal("no data moved")
	}
}

// TestValidatorCatchesMissingPostamble makes sure the 3ΔV checker is not
// vacuous: MTA bursts that end at L3 and drop straight to idle must
// register violations.
func TestValidatorCatchesMissingPostamble(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ch := New(Config{ExactData: true})
	for trial := 0; trial < 400; trial++ {
		if err := ch.SendBurst(randomSector(rng), 0); err != nil {
			t.Fatal(err)
		}
		ch.Idle(4) // deliberately skip the postamble
		if ch.Stats().Violations > 0 {
			return // validator fired, as it must eventually
		}
	}
	t.Fatal("validator never fired despite 400 postamble-less idles")
}

// TestExpectedMatchesExact cross-validates the two accounting modes over
// an identical traffic pattern.
func TestExpectedMatchesExact(t *testing.T) {
	run := func(exact bool, seed int64) Stats {
		rng := rand.New(rand.NewSource(seed))
		ch := New(Config{ExactData: exact})
		for step := 0; step < 4000; step++ {
			n := 0
			switch r := rng.Intn(10); {
			case r < 6: // 60% back-to-back
				n = 0
			case r < 9:
				n = 3
			default:
				n = 4 + rng.Intn(5)
			}
			var data []byte
			if exact {
				data = randomSector(rng)
			} else {
				_ = randomSector(rng) // keep RNG streams aligned
			}
			if err := ch.SendBurst(data, n); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(5) == 0 {
				if ch.NeedsPostamble() {
					ch.Postamble()
				}
				ch.Idle(8)
			}
		}
		return ch.Stats()
	}
	exact := run(true, 99)
	expect := run(false, 99)
	if exact.Violations != 0 {
		t.Fatalf("%d violations in exact run", exact.Violations)
	}
	if exact.DataBits != expect.DataBits || exact.MTABursts != expect.MTABursts ||
		exact.SparseBursts != expect.SparseBursts || exact.Postambles != expect.Postambles {
		t.Fatal("traffic patterns diverged between modes")
	}
	// Expected-energy mode ignores seam level-shifting and data noise;
	// agreement within 1% validates both paths.
	approx(t, "exact vs expected per-bit", exact.PerBit(), expect.PerBit(), 1.0)
}

func TestIdleAccounting(t *testing.T) {
	ch := New(Config{})
	ch.Idle(10)
	ch.Idle(0)
	ch.Idle(-5)
	if ch.Stats().IdleUIs != 10 {
		t.Errorf("IdleUIs = %d, want 10", ch.Stats().IdleUIs)
	}
	if err := ch.SendBurst(nil, 0); err != nil {
		t.Fatal(err)
	}
	util := ch.Stats().Utilization()
	approx(t, "utilization", util, 8.0/18.0, 1e-6)
}

// TestSeamAfterPostamble checks the physically important seam: after a
// postamble the wires sit at L1, and both MTA and sparse bursts must
// start safely from there.
func TestSeamAfterPostamble(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ch := New(Config{ExactData: true})
	for i := 0; i < 50; i++ {
		if err := ch.SendBurst(randomSector(rng), 0); err != nil {
			t.Fatal(err)
		}
		ch.Postamble()
		ch.Idle(4)
		if err := ch.SendBurst(randomSector(rng), 3); err != nil {
			t.Fatal(err)
		}
		if err := ch.SendBurst(randomSector(rng), 0); err != nil {
			t.Fatal(err)
		}
	}
	if v := ch.Stats().Violations; v != 0 {
		t.Fatalf("%d violations across postamble seams", v)
	}
}

// TestSparseDirectlyAfterMTA exercises the level-shifting seam end to end:
// an MTA burst (possibly ending L3) followed immediately by sparse bursts.
func TestSparseDirectlyAfterMTA(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	fam := core.DefaultFamily()
	for _, n := range fam.Lengths() {
		ch := New(Config{ExactData: true})
		for i := 0; i < 200; i++ {
			if err := ch.SendBurst(randomSector(rng), 0); err != nil {
				t.Fatal(err)
			}
			if err := ch.SendBurst(randomSector(rng), n); err != nil {
				t.Fatal(err)
			}
		}
		if v := ch.Stats().Violations; v != 0 {
			t.Fatalf("length %d: %d violations", n, v)
		}
	}
}

func TestPostambleEnergyValue(t *testing.T) {
	ch := New(Config{})
	ch.Postamble()
	m := pam4.DefaultEnergyModel()
	want := float64(Groups*mta.GroupWires) * float64(PostambleUIs()) * m.PostambleWireUIEnergy()
	approx(t, "postamble energy", ch.Stats().PostambleEnergy, want, 1e-9)
}

// TestExactSteadyStateAllocFree pins the zero-alloc property of the
// exact-data hot path: after warm-up (scratch buffer grown, caches
// filled), sending bursts and idling must not allocate. This is what
// keeps exact-mode fleet runs off the garbage collector.
func TestExactSteadyStateAllocFree(t *testing.T) {
	ch := New(Config{ExactData: true})
	rng := rand.New(rand.NewSource(7))
	data := randomSector(rng)
	n := ch.Family().Lengths()[0]
	// Warm up: grow the column scratch buffer and touch every path once.
	for i := 0; i < 4; i++ {
		if err := ch.SendBurst(data, core.MaxSparseSymbols); err != nil {
			t.Fatal(err)
		}
		if err := ch.SendBurst(data, 0); err != nil {
			t.Fatal(err)
		}
		ch.Postamble()
		ch.Idle(8)
	}
	for name, fn := range map[string]func(){
		"sparse": func() {
			if err := ch.SendBurst(data, n); err != nil {
				t.Fatal(err)
			}
		},
		"mta":  func() { _ = ch.SendBurst(data, 0) },
		"idle": func() { ch.Postamble(); ch.Idle(4) },
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s path allocates %.1f times per op in steady state", name, allocs)
		}
	}
}

// TestSharedDefaultsAreStable pins the construction memoization: the
// default model, family, and MTA codec are immutable, so New must hand
// every channel the same instances instead of rebuilding codebooks.
func TestSharedDefaultsAreStable(t *testing.T) {
	a, b := New(Config{}), New(Config{})
	if a.MTACodec() != b.MTACodec() {
		t.Error("default MTA codec not shared between channels")
	}
	if a.Family() != b.Family() {
		t.Error("default family not shared between channels")
	}
	if pam4.DefaultEnergyModel() != pam4.DefaultEnergyModel() {
		t.Error("default energy model not memoized")
	}
	if core.DefaultFamily() != core.DefaultFamily() {
		t.Error("default family not memoized")
	}
	// A custom model must still get its own codec, not the shared one.
	m, err := pam4.NewEnergyModel(pam4.DefaultDriver(), 900)
	if err != nil {
		t.Fatal(err)
	}
	if c := New(Config{Model: m}); c.MTACodec() == a.MTACodec() {
		t.Error("custom-model channel reused the default-model codec")
	}
}
