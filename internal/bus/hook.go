package bus

// Fault-injection hook: the link-reliability subsystem (internal/fault)
// observes every transferred burst through a BurstHook installed at
// channel construction. The hook is the only coupling point — the bus
// never imports the fault package — and it is zero-overhead when nil:
// the uninstalled path costs one predictable branch per burst and
// allocates nothing (enforced by TestExactSteadyStateAllocFree and the
// hotpathalloc analyzer).
//
// Replay: when a hook reports a detected error, the memory controller
// retransmits the sector through ReplayBurst. Replays re-encode from the
// channel's *current* trailing wire state (the physically correct
// behavior — the wires are wherever the corrupted transmission left
// them), occupy wire time, and burn wire+logic energy, but deliver no
// new payload bits; their cost is accounted separately in
// Stats.ReplayEnergy / Stats.ReplayBursts and attributed to the
// profiler's PhaseReplay so the savings waterfall can price reliability.

import (
	"fmt"

	"smores/internal/mta"
	"smores/internal/obs"
	"smores/internal/pam4"
)

// BurstVerdict is a hook's judgement of one transferred burst.
type BurstVerdict struct {
	// Injected is the number of symbol errors the hook injected into this
	// burst's transmitted stream (0 = the burst arrived clean).
	Injected int
	// Detected reports whether any detection layer — codebook, transition
	// legality, or EDC — flagged the burst, i.e. whether the receiver
	// would request a replay.
	Detected bool
}

// BurstHook observes every burst a channel transfers in exact-data mode.
// data is the 32-byte payload, codeLength the encoding (0 = dense MTA),
// pre the per-group trailing wire levels the encoder saw before the
// burst, and replay whether this transmission is an EDC-triggered
// retransmission. Implementations are driven from the simulation's
// single-threaded hot path and need not be concurrency-safe, but must
// not retain data or pre past the call.
type BurstHook interface {
	OnBurst(data []byte, codeLength int, pre [Groups]mta.GroupState, replay bool) BurstVerdict
}

// LastBurstVerdict returns the hook's verdict for the most recent burst
// (including replays). Zero when no hook is installed or the channel
// runs in expected mode.
func (ch *Channel) LastBurstVerdict() BurstVerdict { return ch.verdict }

// faultActive reports whether burst dispatch to the fault hook is live:
// hooks only see exact-data symbol streams.
//
//smores:hotpath
func (ch *Channel) faultActive() bool { return ch.fault != nil && ch.exact }

// dispatchFault forwards one completed burst to the installed hook and
// latches its verdict. The nil-hook path never reaches here (callers
// gate on faultActive), so the hot-path cost of a disabled hook is the
// gate's two predictable branches.
//
//smores:hotpath
func (ch *Channel) dispatchFault(data []byte, codeLength int, pre [Groups]mta.GroupState, replay bool) {
	ch.verdict = ch.fault.OnBurst(data, codeLength, pre, replay)
}

// ReplayBurst retransmits one 32-byte sector after the receiver flagged
// the previous transmission. Exact-data mode only. The replay re-encodes
// from the current trailing wire state, so the transmitted symbols (and
// their energy) generally differ from the original burst. Accounting:
//
//   - Stats.ReplayEnergy gets the wire + logic energy (TotalEnergy
//     includes it; WireEnergy/LogicEnergy and DataBits do not move —
//     replays deliver no new payload).
//   - Stats.ReplayBursts and BusyUIs advance; the profiler sees every
//     symbol under PhaseReplay with real wire/level/transition identity.
//   - The installed hook observes the retransmission (replay=true), so a
//     replay can itself be corrupted and re-detected.
func (ch *Channel) ReplayBurst(data []byte, codeLength int) error {
	if !ch.exact {
		return fmt.Errorf("bus: ReplayBurst requires exact-data mode")
	}
	if len(data) != BurstBytes {
		return fmt.Errorf("bus: replay burst needs %d bytes, got %d", BurstBytes, len(data))
	}
	if ch.recording {
		ch.record(Event{Kind: EventReplay, CodeLength: codeLength, Data: append([]byte(nil), data...)})
	}
	var before Stats
	if ch.m.on {
		before = ch.stats
	}
	var pre [Groups]mta.GroupState
	hook := ch.faultActive()
	if hook {
		pre = ch.states
	}
	var err error
	if codeLength == 0 {
		err = ch.replayMTA(data)
	} else {
		err = ch.replaySparse(data, codeLength)
	}
	if err != nil {
		return err
	}
	ch.stats.ReplayBursts++
	if ch.m.on {
		ch.mirrorDeltas(before)
	}
	if hook {
		ch.dispatchFault(data, codeLength, pre, true)
	}
	return nil
}

// replayMTA retransmits a dense burst, accounting into ReplayEnergy.
func (ch *Channel) replayMTA(data []byte) error {
	ch.stats.BusyUIs += BurstUIs
	ch.stats.ReplayEnergy += BurstBytes * 8 * ch.mtaLogic
	ch.prof.AddAggregate(obs.PhaseReplay, obs.ProfileCodecMTA, BurstBytes*8*ch.mtaLogic, 0)
	ch.lastMTA = true
	for g := 0; g < Groups; g++ {
		for beat := 0; beat < 2; beat++ {
			var bytes8 [mta.GroupDataWires]byte
			copy(bytes8[:], data[g*GroupBurstBytes+beat*mta.GroupDataWires:])
			prev := ch.states[g]
			b := ch.mtaCodec.EncodeGroupBeat(bytes8, &ch.states[g])
			for _, col := range b.Columns() {
				ch.accountReplayColumn(g, &prev, col, obs.ProfileCodecMTA)
			}
		}
	}
	return nil
}

// replaySparse retransmits a sparse burst, accounting into ReplayEnergy.
func (ch *Channel) replaySparse(data []byte, codeLength int) error {
	sc := ch.family.ByLength(codeLength)
	if sc == nil {
		return fmt.Errorf("bus: no sparse codec of length %d in family", codeLength)
	}
	ch.stats.BusyUIs += int64(sc.BurstUIs(GroupBurstBytes))
	logic := BurstBytes * 8 * ch.sparseLogic
	ch.stats.ReplayEnergy += logic
	codecIdx := obs.ProfileCodecIndex(codeLength)
	ch.prof.AddAggregate(obs.PhaseReplay, codecIdx, logic, 0)
	ch.lastMTA = false
	ch.mtaChain = 0
	for g := 0; g < Groups; g++ {
		prev := ch.states[g]
		cols, err := sc.AppendGroupBurst(ch.colScratch[:0], data[g*GroupBurstBytes:(g+1)*GroupBurstBytes], &ch.states[g])
		if err != nil {
			return err
		}
		ch.colScratch = cols
		for _, col := range cols {
			ch.accountReplayColumn(g, &prev, col, codecIdx)
		}
	}
	return nil
}

// accountReplayColumn is accountColumn for retransmissions: same energy
// integration and transition validation, but the joules land in
// Stats.ReplayEnergy and the profiler's PhaseReplay (keeping the
// payload-phase partition of WireEnergy intact).
func (ch *Channel) accountReplayColumn(g int, prev *mta.GroupState, col mta.Column, codec int) {
	if ch.prof.On() {
		base := g * mta.GroupWires
		for w, l := range col {
			tc := obs.TransOfDelta(pam4.Delta(prev[w], l))
			if codec != obs.ProfileCodecMTA && prev[w] == pam4.L3 {
				tc = obs.TransSeam
			}
			ch.prof.AddSymbol(obs.PhaseReplay, codec, base+w, int(l), tc, ch.levelE[l])
		}
	}
	for _, l := range col {
		ch.stats.ReplayEnergy += ch.levelE[l]
	}
	ch.checkColumn(g, prev, col)
}
