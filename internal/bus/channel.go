// Package bus models one GDDR6X data channel: sixteen data pins plus two
// DBI pins, organized as two byte groups of (8 data + 1 DBI) wires. The
// channel sequences whole transfers — MTA bursts, SMOREs sparse bursts,
// postambles and idle periods — while tracking per-wire trailing levels,
// integrating energy, and (in exact-data mode) validating that no encoded
// wire ever takes a 3ΔV step.
package bus

import (
	"fmt"
	"sync"

	"smores/internal/core"
	"smores/internal/floats"
	"smores/internal/mta"
	"smores/internal/obs"
	"smores/internal/pam4"
)

// Channel geometry: a 32-byte sector moves over 16 data pins as 8 PAM4
// symbols per pin, i.e. two byte groups each carrying 16 bytes.
const (
	// Groups is the number of byte groups per channel.
	Groups = 2
	// BurstBytes is the transfer size of one burst (a 32-byte sector).
	BurstBytes = 32
	// GroupBurstBytes is each group's share of a burst.
	GroupBurstBytes = BurstBytes / Groups
	// UIsPerClock is the number of unit intervals per command clock
	// (data clock at 2× the command clock, double data rate).
	UIsPerClock = 4
	// BurstUIs is the dense burst length: 8 symbols per pin.
	BurstUIs = core.BurstSlotClocks * UIsPerClock
)

// Paper-derived codec logic energies (encoder + decoder), fJ per data bit.
// The MTA figure is the paper's §V-B "additional 10 fJ/bit for the MTA
// encoder/decoder logic"; the sparse figure is twice the quoted 3.5 fJ/bit
// per 4b3s-DBI encoder, which also reconciles our wire-only energies with
// the paper's Table IV within 0.3%.
const (
	DefaultMTALogicPerBit    = 10.0
	DefaultSparseLogicPerBit = 7.0
)

// Config assembles a channel.
type Config struct {
	// Model is the per-symbol energy model. Nil selects the default.
	Model *pam4.EnergyModel
	// MTACodec encodes dense bursts. Nil builds the standard codec.
	MTACodec *mta.Codec
	// Family supplies sparse codecs by length. Nil builds the paper's
	// default family (3-level, DBI, paper-faithful).
	Family *core.Family
	// ExactData transmits and validates real symbol streams. When false
	// the channel runs in expected-energy mode: per-transfer energy uses
	// closed-form expectations over uniform data (the simulator fast
	// path), and transition validation is unavailable.
	ExactData bool
	// MTALogicPerBit / SparseLogicPerBit account encoder+decoder energy;
	// negative values select the defaults, zero disables logic energy.
	MTALogicPerBit    float64
	SparseLogicPerBit float64
	// Record keeps the ordered event sequence (bursts with payloads,
	// postambles, idles) retrievable via Events — for integration tests
	// and debugging. Payloads are captured in exact-data mode.
	Record bool
	// LevelShiftedIdle models the paper's hypothetical optimized MTA
	// (Fig. 8b): instead of driving a one-clock L1 postamble, an MTA
	// burst transitions to idle through a single level-shifted symbol on
	// the wires that ended at L3 — far cheaper than the postamble.
	LevelShiftedIdle bool
	// Obs registers the channel's live counters (energy, bits, bursts
	// by codec, occupancy) into the given registry; nil disables
	// telemetry at zero hot-path cost beyond a nil check.
	Obs *obs.Registry
	// ObsLabels scope this channel's metric series (e.g. channel="3").
	ObsLabels []obs.Label
	// Profile attributes every femtojoule the channel accounts into the
	// energy profiler, keyed by (phase × codec × wire × level ×
	// transition class). In exact-data mode each transmitted symbol is
	// attributed individually; in expected mode the closed-form energies
	// land in aggregate cells. The profiler's total reconciles with
	// Stats.TotalEnergy (test-enforced). Nil disables attribution; the
	// hot path then pays one nil check per accounting block.
	Profile *obs.Profile
	// Fault installs a link-reliability hook (see hook.go) that observes
	// every exact-data burst and may inject/classify symbol errors. Nil
	// disables injection at zero hot-path cost beyond a nil check; the
	// hook is never consulted in expected mode.
	Fault BurstHook
}

// Stats accumulates channel activity. All energies are femtojoules.
type Stats struct {
	DataBits        float64
	WireEnergy      float64
	PostambleEnergy float64
	LogicEnergy     float64
	// ReplayEnergy is wire+logic energy burned by EDC-triggered burst
	// retransmissions (ReplayBurst). Kept outside WireEnergy/LogicEnergy:
	// replays deliver no new payload bits, so folding their joules into
	// the payload phases would silently improve pJ/bit.
	ReplayEnergy float64
	MTABursts    int64
	SparseBursts int64
	// ReplayBursts counts retransmissions (not included in MTABursts or
	// SparseBursts; DataBits does not advance on replay).
	ReplayBursts int64
	Postambles   int64
	BusyUIs      int64
	IdleUIs      int64
	Violations   int64
}

// TotalEnergy returns wire + postamble + logic + replay energy in fJ.
func (s Stats) TotalEnergy() float64 {
	return s.WireEnergy + s.PostambleEnergy + s.LogicEnergy + s.ReplayEnergy
}

// PerBit returns total fJ per transferred data bit (0 if no data moved).
func (s Stats) PerBit() float64 {
	if floats.Eq(s.DataBits, 0) {
		return 0
	}
	return s.TotalEnergy() / s.DataBits
}

// Utilization returns the busy fraction of wire time.
func (s Stats) Utilization() float64 {
	total := s.BusyUIs + s.IdleUIs
	if total == 0 {
		return 0
	}
	return float64(s.BusyUIs) / float64(total)
}

// Merge adds another channel's accumulated statistics into s — the
// multi-channel roll-up path. Every field is additive; merging shard
// snapshots in a fixed channel order yields byte-identical float sums
// regardless of how the shards were scheduled (the sharded-runner
// differential test rests on this).
func (s *Stats) Merge(o Stats) {
	s.DataBits += o.DataBits
	s.WireEnergy += o.WireEnergy
	s.PostambleEnergy += o.PostambleEnergy
	s.LogicEnergy += o.LogicEnergy
	s.ReplayEnergy += o.ReplayEnergy
	s.MTABursts += o.MTABursts
	s.SparseBursts += o.SparseBursts
	s.ReplayBursts += o.ReplayBursts
	s.Postambles += o.Postambles
	s.BusyUIs += o.BusyUIs
	s.IdleUIs += o.IdleUIs
	s.Violations += o.Violations
}

// Equal reports exact equality of two snapshots. Float fields compare
// bit-identically (floats.Eq) — this is the comparison the sequential
// vs. sharded differential gates use, not a tolerance check.
func (s Stats) Equal(o Stats) bool {
	return floats.Eq(s.DataBits, o.DataBits) &&
		floats.Eq(s.WireEnergy, o.WireEnergy) &&
		floats.Eq(s.PostambleEnergy, o.PostambleEnergy) &&
		floats.Eq(s.LogicEnergy, o.LogicEnergy) &&
		floats.Eq(s.ReplayEnergy, o.ReplayEnergy) &&
		s.MTABursts == o.MTABursts &&
		s.SparseBursts == o.SparseBursts &&
		s.ReplayBursts == o.ReplayBursts &&
		s.Postambles == o.Postambles &&
		s.BusyUIs == o.BusyUIs &&
		s.IdleUIs == o.IdleUIs &&
		s.Violations == o.Violations
}

// Channel is a single GDDR6X data channel. Not safe for concurrent use.
type Channel struct {
	model       *pam4.EnergyModel
	mtaCodec    *mta.Codec
	family      *core.Family
	exact       bool
	mtaLogic    float64
	sparseLogic float64
	shiftIdle   bool

	states  [Groups]mta.GroupState
	lastMTA bool // whether the most recent burst used MTA encoding
	// mtaChain counts consecutive MTA beats since the last seam reset
	// (idle, postamble, or sparse burst), driving the expected-energy
	// model's inversion warm-up.
	mtaChain  int
	recording bool
	events    []Event
	stats     Stats
	m         *busMetrics
	prof      *obs.Profile
	// fault is the installed link-reliability hook (nil = perfect link);
	// verdict latches the hook's judgement of the most recent burst.
	fault   BurstHook
	verdict BurstVerdict
	// expCache memoizes per-codec expected burst energies: expected mode
	// otherwise recomputes the DBI multinomial on every burst, and the
	// values are per-codec constants for a fixed family and model.
	expCache [core.MaxSparseSymbols + 1]*expSparseEnergy
	// levelE caches the model's per-level symbol energies: exact mode
	// integrates energy symbol by symbol and a direct array load beats a
	// method call with a validity check in the innermost loop.
	levelE [pam4.NumLevels]float64
	// colScratch is the reusable column buffer for exact-mode sparse
	// bursts, eliminating the per-group slice allocation in steady state.
	colScratch []mta.Column
}

// expSparseEnergy caches one sparse codec's closed-form group-burst
// energies (identical floats to calling the codec directly).
type expSparseEnergy struct {
	total float64 // ExpectedBurstEnergy(GroupBurstBytes)
	dbi   float64 // ExpectedBurstDBIEnergy(GroupBurstBytes)
}

// defaultMTACodec memoizes the standard MTA codec under the default
// energy model: the codec is immutable and its construction (sequence
// enumeration plus an energy sort) dominates channel setup, so fleet runs
// share one instance. pam4.DefaultEnergyModel returns a stable pointer,
// making the nil-fill check in New exact.
var defaultMTACodec = sync.OnceValue(func() *mta.Codec {
	return mta.New(pam4.DefaultEnergyModel())
})

// New builds a channel, filling defaults for nil config fields.
func New(cfg Config) *Channel {
	if cfg.Model == nil {
		cfg.Model = pam4.DefaultEnergyModel()
	}
	if cfg.MTACodec == nil {
		if cfg.Model == pam4.DefaultEnergyModel() {
			cfg.MTACodec = defaultMTACodec()
		} else {
			cfg.MTACodec = mta.New(cfg.Model)
		}
	}
	if cfg.Family == nil {
		cfg.Family = core.DefaultFamily()
	}
	if cfg.MTALogicPerBit < 0 {
		cfg.MTALogicPerBit = DefaultMTALogicPerBit
	}
	if cfg.SparseLogicPerBit < 0 {
		cfg.SparseLogicPerBit = DefaultSparseLogicPerBit
	}
	ch := &Channel{
		model:       cfg.Model,
		mtaCodec:    cfg.MTACodec,
		family:      cfg.Family,
		exact:       cfg.ExactData,
		mtaLogic:    cfg.MTALogicPerBit,
		sparseLogic: cfg.SparseLogicPerBit,
		shiftIdle:   cfg.LevelShiftedIdle,
		recording:   cfg.Record,
		m:           newBusMetrics(cfg.Obs, cfg.ObsLabels),
		prof:        cfg.Profile,
		fault:       cfg.Fault,
		levelE:      cfg.Model.LevelEnergies(),
	}
	for g := range ch.states {
		ch.states[g] = mta.IdleGroupState()
	}
	return ch
}

// Stats returns a snapshot of accumulated statistics.
func (ch *Channel) Stats() Stats { return ch.stats }

// Family returns the channel's sparse codec family.
func (ch *Channel) Family() *core.Family { return ch.family }

// MTACodec returns the channel's dense codec.
func (ch *Channel) MTACodec() *mta.Codec { return ch.mtaCodec }

// SendBurst transfers one 32-byte sector. codeLength selects the
// encoding: 0 for dense MTA, otherwise a sparse output length available
// in the channel's family. data supplies the payload in exact mode and
// may be nil in expected mode.
func (ch *Channel) SendBurst(data []byte, codeLength int) error {
	if ch.recording {
		ch.record(Event{Kind: EventBurst, CodeLength: codeLength, Data: append([]byte(nil), data...)})
	}
	var before Stats
	if ch.m.on {
		before = ch.stats
	}
	var pre [Groups]mta.GroupState
	hook := ch.faultActive()
	if hook {
		pre = ch.states
	}
	var err error
	if codeLength == 0 {
		err = ch.sendMTA(data)
	} else {
		err = ch.sendSparse(data, codeLength)
	}
	if ch.m.on && err == nil {
		ch.mirrorDeltas(before)
		ch.m.burst(codeLength)
	}
	if hook && err == nil {
		ch.dispatchFault(data, codeLength, pre, false)
	}
	return err
}

// mirrorDeltas publishes the difference between the current stats and a
// prior snapshot into the obs registry — the counters are driven from
// the identical accounting as Stats, keeping one source of truth.
func (ch *Channel) mirrorDeltas(before Stats) {
	d := ch.stats
	ch.m.dataBits.Add(int64(d.DataBits - before.DataBits))
	ch.m.busyUIs.Add(d.BusyUIs - before.BusyUIs)
	ch.m.idleUIs.Add(d.IdleUIs - before.IdleUIs)
	ch.m.wireEnergy.Add(d.WireEnergy - before.WireEnergy)
	ch.m.postambleJ.Add(d.PostambleEnergy - before.PostambleEnergy)
	ch.m.logicEnergy.Add(d.LogicEnergy - before.LogicEnergy)
	ch.m.replayEnergy.Add(d.ReplayEnergy - before.ReplayEnergy)
	ch.m.replays.Add(d.ReplayBursts - before.ReplayBursts)
	ch.m.postambles.Add(d.Postambles - before.Postambles)
	ch.m.violations.Add(d.Violations - before.Violations)
}

func (ch *Channel) sendMTA(data []byte) error {
	ch.stats.MTABursts++
	ch.stats.DataBits += BurstBytes * 8
	ch.stats.BusyUIs += BurstUIs
	logic := BurstBytes * 8 * ch.mtaLogic
	ch.stats.LogicEnergy += logic
	ch.prof.AddAggregate(obs.PhaseLogic, obs.ProfileCodecMTA, logic, 0)
	ch.lastMTA = true
	if !ch.exact {
		// 2 groups × 2 beats, with the inversion chain warming up from
		// the last seam reset.
		for beat := 0; beat < 2; beat++ {
			ch.stats.WireEnergy += Groups * ch.mtaCodec.ExpectedBeatEnergyAt(ch.mtaChain)
			if ch.prof.On() {
				payload, dbi := ch.mtaCodec.ExpectedBeatEnergySplitAt(ch.mtaChain)
				ch.prof.AddAggregate(obs.PhaseMTAPayload, obs.ProfileCodecMTA,
					Groups*payload, Groups*mta.GroupDataWires*mta.SeqSymbols)
				ch.prof.AddAggregate(obs.PhaseDBIWire, obs.ProfileCodecMTA,
					Groups*dbi, Groups*mta.SeqSymbols)
			}
			ch.mtaChain++
		}
		return nil
	}
	if len(data) != BurstBytes {
		return fmt.Errorf("bus: MTA burst needs %d bytes, got %d", BurstBytes, len(data))
	}
	for g := 0; g < Groups; g++ {
		for beat := 0; beat < 2; beat++ {
			var bytes8 [mta.GroupDataWires]byte
			copy(bytes8[:], data[g*GroupBurstBytes+beat*mta.GroupDataWires:])
			prev := ch.states[g]
			b := ch.mtaCodec.EncodeGroupBeat(bytes8, &ch.states[g])
			for _, col := range b.Columns() {
				ch.accountColumn(g, &prev, col, obs.PhaseMTAPayload, obs.ProfileCodecMTA)
			}
		}
	}
	return nil
}

func (ch *Channel) sendSparse(data []byte, codeLength int) error {
	sc := ch.family.ByLength(codeLength)
	if sc == nil {
		return fmt.Errorf("bus: no sparse codec of length %d in family", codeLength)
	}
	ch.stats.SparseBursts++
	ch.stats.DataBits += BurstBytes * 8
	// Both groups transmit in parallel, so wall-clock occupancy is one
	// group's burst length.
	ch.stats.BusyUIs += int64(sc.BurstUIs(GroupBurstBytes))
	logic := BurstBytes * 8 * ch.sparseLogic
	ch.stats.LogicEnergy += logic
	codecIdx := obs.ProfileCodecIndex(codeLength)
	ch.prof.AddAggregate(obs.PhaseLogic, codecIdx, logic, 0)
	ch.lastMTA = false
	ch.mtaChain = 0 // sparse bursts end at ≤L2: the inversion chain resets
	if !ch.exact {
		e := ch.expectedSparse(sc, codeLength)
		ch.stats.WireEnergy += Groups * e.total
		if ch.prof.On() {
			cols := int64(sc.BurstUIs(GroupBurstBytes))
			ch.prof.AddAggregate(obs.PhaseSparsePayload, codecIdx,
				Groups*(e.total-e.dbi), Groups*cols*mta.GroupDataWires)
			ch.prof.AddAggregate(obs.PhaseDBIWire, codecIdx,
				Groups*e.dbi, Groups*cols)
		}
		return nil
	}
	if len(data) != BurstBytes {
		return fmt.Errorf("bus: sparse burst needs %d bytes, got %d", BurstBytes, len(data))
	}
	for g := 0; g < Groups; g++ {
		prev := ch.states[g]
		cols, err := sc.AppendGroupBurst(ch.colScratch[:0], data[g*GroupBurstBytes:(g+1)*GroupBurstBytes], &ch.states[g])
		if err != nil {
			return err
		}
		ch.colScratch = cols // keep the (possibly grown) buffer
		for _, col := range cols {
			ch.accountColumn(g, &prev, col, obs.PhaseSparsePayload, codecIdx)
		}
	}
	return nil
}

// expShared memoizes closed-form group-burst energies across channels,
// keyed by codec identity. Fleet runs construct one channel per app per
// policy over the same (memoized) family, so the codec pointers are
// stable and the DBI multinomials — per-codec constants — are computed
// once per process instead of once per channel. sync.Map because fleet
// workers build and drive channels concurrently.
var expShared sync.Map // *core.SparseGroupCodec → expSparseEnergy

// expectedSparse returns the memoized closed-form group-burst energies
// for a sparse codec (identical floats to calling the codec directly —
// the caches are a pure speedup for expected mode). The per-channel
// array is the contention-free fast path; the process-wide map shares
// the one-time computation across the fleet.
func (ch *Channel) expectedSparse(sc *core.SparseGroupCodec, codeLength int) expSparseEnergy {
	if codeLength >= 0 && codeLength < len(ch.expCache) {
		if c := ch.expCache[codeLength]; c != nil {
			return *c
		}
	}
	var e expSparseEnergy
	if v, ok := expShared.Load(sc); ok {
		e = v.(expSparseEnergy)
	} else {
		e = expSparseEnergy{
			total: sc.ExpectedBurstEnergy(GroupBurstBytes),
			dbi:   sc.ExpectedBurstDBIEnergy(GroupBurstBytes),
		}
		expShared.Store(sc, e)
	}
	if codeLength >= 0 && codeLength < len(ch.expCache) {
		ch.expCache[codeLength] = &e
	}
	return e
}

// Postamble drives the one-command-clock L1 postamble on all wires. The
// device issues it after an MTA burst that is followed by bus idle; the
// channel records the calibrated postamble drive energy.
func (ch *Channel) Postamble() {
	ch.record(Event{Kind: EventPostamble})
	if ch.m.on {
		defer ch.mirrorDeltas(ch.stats)
	}
	ch.stats.Postambles++
	ch.mtaChain = 0
	ch.lastMTA = false
	ch.stats.BusyUIs += PostambleUIs()
	postE := float64(Groups*mta.GroupWires) * float64(PostambleUIs()) *
		ch.model.PostambleWireUIEnergy()
	ch.stats.PostambleEnergy += postE
	if ch.prof.On() && !ch.exact {
		// Expected mode carries no trailing wire state, so the drive is
		// attributed in aggregate; exact mode attributes per wire below.
		ch.prof.AddAggregate(obs.PhasePostamble, obs.ProfileCodecMTA,
			postE, Groups*mta.GroupWires*PostambleUIs())
	}
	for g := 0; g < Groups; g++ {
		if ch.exact {
			if ch.prof.On() {
				ch.profilePostamble(g, &ch.states[g])
			}
			prev := ch.states[g]
			col := mta.PostambleColumn()
			for ui := 0; ui < int(PostambleUIs()); ui++ {
				ch.checkColumn(g, &prev, col)
			}
		}
		for w := range ch.states[g] {
			ch.states[g][w] = mta.PostambleLevel
		}
	}
}

// PostambleUIs returns the postamble duration in unit intervals.
func PostambleUIs() int64 { return mta.PostambleUIs }

// Idle advances the bus through idle unit intervals (the bus parks at the
// free L0 level). With LevelShiftedIdle, wires that ended at L3 step
// through one level-shifted L1 symbol first.
func (ch *Channel) Idle(uis int64) {
	if uis <= 0 {
		return
	}
	ch.record(Event{Kind: EventIdle, IdleUIs: uis})
	if ch.m.on {
		if ch.shiftIdle && ch.lastMTA {
			ch.m.seams.Inc()
		}
		defer ch.mirrorDeltas(ch.stats)
	}
	// Expected-mode level-shifted idle energy: one L1 symbol per wire
	// expected to have ended at L3.
	if ch.shiftIdle && ch.lastMTA && !ch.exact && ch.mtaChain > 0 {
		pEnd := ch.mtaCodec.EndL3ProbAt(ch.mtaChain - 1)
		wires := Groups * (mta.GroupDataWires*pEnd + 0.25) // DBI wire's last symbol is uniform
		shiftE := wires * ch.model.SymbolEnergy(pam4.L1)
		ch.stats.WireEnergy += shiftE
		ch.prof.AddAggregate(obs.PhaseIdleShift, obs.ProfileCodecMTA, shiftE, 0)
	}
	ch.stats.IdleUIs += uis
	ch.mtaChain = 0
	for g := 0; g < Groups; g++ {
		if ch.exact {
			prev := ch.states[g]
			if ch.shiftIdle {
				// Step L3 wires through a shifted L1 on the way down.
				var step mta.Column
				needed := false
				for w := range step {
					step[w] = pam4.L0
					if prev[w] == pam4.L3 {
						step[w] = pam4.L1
						needed = true
					}
				}
				if needed {
					ch.accountColumn(g, &prev, step, obs.PhaseIdleShift, obs.ProfileCodecMTA)
				}
			}
			ch.checkColumn(g, &prev, mta.IdleColumn())
		}
		ch.states[g] = mta.IdleGroupState()
	}
	ch.lastMTA = false
}

// NeedsPostamble reports whether ending the current activity into idle
// requires a postamble: only dense MTA bursts do (a sequence may end at
// L3, and L3→L0 would be a 3ΔV swing); sparse bursts end at ≤L2.
func (ch *Channel) NeedsPostamble() bool { return ch.lastMTA }

// accountColumn integrates one transmitted column's energy, attributes
// it to the profiler, and validates transitions. prev tracks the
// previous column (seeded with the pre-burst trailing state); ph and
// codec give the profiler the attribution context of the burst.
//
//smores:hotpath
func (ch *Channel) accountColumn(g int, prev *mta.GroupState, col mta.Column, ph obs.Phase, codec int) {
	if ch.prof.On() {
		ch.profileColumn(g, prev, col, ph, codec)
	}
	for _, l := range col {
		ch.stats.WireEnergy += ch.levelE[l]
	}
	ch.checkColumn(g, prev, col)
}

// checkColumn validates max-transition safety on the encoded wires (the
// DBI wire is exempt, as in GDDR6X) and advances prev.
func (ch *Channel) checkColumn(_ int, prev *mta.GroupState, col mta.Column) {
	for w := 0; w < mta.GroupDataWires; w++ {
		if pam4.Delta(prev[w], col[w]) > pam4.MaxTransition {
			ch.stats.Violations++
		}
	}
	*prev = mta.GroupState(col)
}
