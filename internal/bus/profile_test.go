package bus

import (
	"math"
	"math/rand"
	"testing"

	"smores/internal/core"
	"smores/internal/obs"
)

// reconcile asserts the profiler's totals match the channel's stats to
// float round-off (summation orders differ between the two paths, so
// exact bit equality is not achievable; the bound is a few ULPs per
// accumulated sample).
func reconcile(t *testing.T, ch *Channel, p *obs.Profile) {
	t.Helper()
	st := ch.Stats()
	checks := []struct {
		name      string
		got, want float64
	}{
		{"total", p.TotalEnergy(), st.TotalEnergy()},
		{"postamble", p.PhaseEnergy(obs.PhasePostamble), st.PostambleEnergy},
		{"logic", p.PhaseEnergy(obs.PhaseLogic), st.LogicEnergy},
		{"wire", p.PhaseEnergy(obs.PhaseMTAPayload) +
			p.PhaseEnergy(obs.PhaseDBIWire) +
			p.PhaseEnergy(obs.PhaseSparsePayload) +
			p.PhaseEnergy(obs.PhaseIdleShift), st.WireEnergy},
	}
	for _, c := range checks {
		tol := 1e-9 * math.Max(math.Abs(c.want), 1)
		if math.Abs(c.got-c.want) > tol {
			t.Errorf("profile %s = %.9g fJ, stats want %.9g fJ (diff %g)",
				c.name, c.got, c.want, c.got-c.want)
		}
	}
}

// driveWorkload runs a deterministic mixed workload through a channel:
// MTA and every sparse code length, with postambles and idles (both
// plain and after bursts) interleaved. With LevelShiftedIdle the device
// goes straight to idle through the shifted seam (the optimized-MTA
// policy); otherwise MTA bursts get the required postamble.
func driveWorkload(t *testing.T, ch *Channel, rng *rand.Rand, bursts int) {
	t.Helper()
	lengths := []int{0, 0, 3, 4, 5, 6, 7, 8, 0, 3}
	for i := 0; i < bursts; i++ {
		cl := lengths[i%len(lengths)]
		if err := ch.SendBurst(randomSector(rng), cl); err != nil {
			t.Fatal(err)
		}
		if i%2 == 1 {
			if ch.NeedsPostamble() && !ch.shiftIdle {
				ch.Postamble()
			}
			ch.Idle(int64(1 + rng.Intn(8)))
		}
	}
	if ch.NeedsPostamble() && !ch.shiftIdle {
		ch.Postamble()
	}
	ch.Idle(4)
}

// TestProfileConservation checks, for every accounting mode × seam
// handling combination, that the energy profiler's cells sum to exactly
// the channel's Stats — total, per phase group, and with no energy in
// impossible places.
func TestProfileConservation(t *testing.T) {
	cases := []struct {
		name  string
		exact bool
		shift bool
	}{
		{"expected", false, false},
		{"expected-shiftidle", false, true},
		{"exact", true, false},
		{"exact-shiftidle", true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := obs.NewProfile()
			ch := New(Config{
				ExactData:         tc.exact,
				LevelShiftedIdle:  tc.shift,
				MTALogicPerBit:    -1,
				SparseLogicPerBit: -1,
				Profile:           p,
			})
			rng := rand.New(rand.NewSource(42))
			driveWorkload(t, ch, rng, 400)
			reconcile(t, ch, p)

			if ch.Stats().Violations != 0 {
				t.Fatalf("workload produced %d transition violations", ch.Stats().Violations)
			}
			if tc.shift {
				if p.PhaseEnergy(obs.PhaseIdleShift) <= 0 {
					t.Error("level-shifted idle ran but no idle-shift energy attributed")
				}
			} else {
				if e := p.PhaseEnergy(obs.PhaseIdleShift); e != 0 {
					t.Errorf("idle-shift energy %g fJ without LevelShiftedIdle", e)
				}
				if p.PhaseEnergy(obs.PhasePostamble) <= 0 {
					t.Error("postambles ran but no postamble energy attributed")
				}
			}
			for _, ph := range []obs.Phase{obs.PhaseMTAPayload, obs.PhaseDBIWire,
				obs.PhaseSparsePayload, obs.PhaseLogic} {
				if p.PhaseEnergy(ph) <= 0 {
					t.Errorf("phase %v attributed no energy", ph)
				}
			}
		})
	}
}

// TestProfileExactModeDetail checks the per-symbol attribution detail
// only exact mode can produce: real wire/level/transition coordinates,
// seam classes on sparse symbols after L3, and no 3ΔV class anywhere
// but the DBI wires.
func TestProfileExactModeDetail(t *testing.T) {
	p := obs.NewProfile()
	ch := New(Config{ExactData: true, Profile: p})
	rng := rand.New(rand.NewSource(7))
	driveWorkload(t, ch, rng, 300)

	s := p.Snapshot()
	if len(s.Cells) == 0 {
		t.Fatal("no cells populated")
	}
	var seamFJ float64
	for _, c := range s.Cells {
		if c.Wire == obs.WireAgg || c.Level == obs.LevelMix || c.Trans == obs.TransMix {
			// Exact mode only uses aggregate cells for logic energy.
			if c.Phase != obs.PhaseLogic {
				t.Errorf("exact mode produced aggregate cell outside logic: %+v", c)
			}
			continue
		}
		if c.Trans == obs.Trans3DV {
			// 3ΔV steps are legal only on the two DBI wires (group-local
			// wire index 8 → channel wires 8 and 17).
			if w := c.Wire % 9; w != 8 {
				t.Errorf("3dv transition attributed to encoded wire %d: %+v", c.Wire, c)
			}
			if c.Phase != obs.PhaseDBIWire {
				t.Errorf("3dv transition outside dbi-wire phase: %+v", c)
			}
		}
		if c.Trans == obs.TransSeam {
			seamFJ += c.FJ
			if c.Phase != obs.PhaseSparsePayload && c.Phase != obs.PhaseDBIWire &&
				c.Phase != obs.PhaseIdleShift {
				t.Errorf("seam class in phase %v: %+v", c.Phase, c)
			}
		}
		if c.Phase == obs.PhasePostamble && c.Level != 1 {
			t.Errorf("postamble symbol at level L%d: %+v", c.Level, c)
		}
	}
	if seamFJ <= 0 {
		t.Error("no seam energy attributed (MTA→sparse seams must level-shift)")
	}
	// Codec roll-up: all burst codecs must appear.
	for _, idx := range []int{obs.ProfileCodecMTA, obs.ProfileCodecIndex(3),
		obs.ProfileCodecIndex(8)} {
		if s.CodecFJ[idx] <= 0 {
			t.Errorf("codec %s attributed no energy", obs.ProfileCodecName(idx))
		}
	}
}

// TestProfileExpectedMatchesNoProfile verifies attaching a profiler
// changes no accounting: the same workload with and without a profile
// must produce bit-identical Stats in both modes.
func TestProfileExpectedMatchesNoProfile(t *testing.T) {
	for _, exact := range []bool{false, true} {
		run := func(p *obs.Profile) Stats {
			ch := New(Config{
				ExactData: exact, LevelShiftedIdle: true,
				MTALogicPerBit: -1, SparseLogicPerBit: -1, Profile: p,
			})
			driveWorkload(t, ch, rand.New(rand.NewSource(99)), 200)
			return ch.Stats()
		}
		with := run(obs.NewProfile())
		without := run(nil)
		if with != without {
			t.Errorf("exact=%v: stats differ with profile attached:\nwith:    %+v\nwithout: %+v",
				exact, with, without)
		}
	}
}

// TestProfileExpectedSparseSplit pins the expected-mode payload/DBI
// split: per sparse codec, the two aggregate phases must sum to the
// codec's closed-form burst energy.
func TestProfileExpectedSparseSplit(t *testing.T) {
	fam := core.DefaultFamily()
	for cl := core.MinSparseSymbols; cl <= core.MaxSparseSymbols; cl++ {
		sc := fam.ByLength(cl)
		if sc == nil {
			continue
		}
		p := obs.NewProfile()
		ch := New(Config{Profile: p})
		if err := ch.SendBurst(nil, cl); err != nil {
			t.Fatal(err)
		}
		idx := obs.ProfileCodecIndex(cl)
		payload, _ := p.Cell(obs.PhaseSparsePayload, idx, obs.WireAgg, obs.LevelMix, obs.TransMix)
		dbiE, _ := p.Cell(obs.PhaseDBIWire, idx, obs.WireAgg, obs.LevelMix, obs.TransMix)
		want := Groups * sc.ExpectedBurstEnergy(GroupBurstBytes)
		if got := payload + dbiE; math.Abs(got-want) > 1e-9*want {
			t.Errorf("%s: payload+dbi = %g, want %g", sc.Name(), got, want)
		}
		if sc.DBI() && dbiE <= 0 {
			t.Errorf("%s: DBI codec attributed no dbi-wire energy", sc.Name())
		}
		wantDBI := Groups * sc.ExpectedBurstDBIEnergy(GroupBurstBytes)
		if math.Abs(dbiE-wantDBI) > 1e-9*math.Max(wantDBI, 1) {
			t.Errorf("%s: dbi energy = %g, want %g", sc.Name(), dbiE, wantDBI)
		}
	}
}

// FuzzProfileConservation drives random burst/idle/postamble schedules
// through both accounting modes and checks conservation each time.
func FuzzProfileConservation(f *testing.F) {
	f.Add(int64(1), uint8(8), true)
	f.Add(int64(2), uint8(32), false)
	f.Add(int64(3), uint8(64), true)
	f.Fuzz(func(t *testing.T, seed int64, bursts uint8, shift bool) {
		if bursts == 0 {
			bursts = 1
		}
		rng := rand.New(rand.NewSource(seed))
		for _, exact := range []bool{false, true} {
			p := obs.NewProfile()
			ch := New(Config{
				ExactData: exact, LevelShiftedIdle: shift,
				MTALogicPerBit: -1, SparseLogicPerBit: -1, Profile: p,
			})
			lengths := []int{0, 3, 4, 5, 6, 7, 8}
			for i := 0; i < int(bursts); i++ {
				cl := lengths[rng.Intn(len(lengths))]
				if err := ch.SendBurst(randomSector(rng), cl); err != nil {
					t.Fatal(err)
				}
				switch rng.Intn(3) {
				case 0:
					if ch.NeedsPostamble() {
						ch.Postamble()
					}
					ch.Idle(int64(1 + rng.Intn(6)))
				case 1:
					ch.Idle(int64(1 + rng.Intn(6)))
				}
			}
			if ch.NeedsPostamble() {
				ch.Postamble()
			}
			ch.Idle(2)
			reconcile(t, ch, p)
		}
	})
}
