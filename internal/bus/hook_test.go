package bus

import (
	"math"
	"math/rand"
	"testing"

	"smores/internal/floats"
	"smores/internal/mta"
	"smores/internal/obs"
)

// recordingHook captures every dispatch for inspection.
type recordingHook struct {
	calls   int
	replays int
	lastPre [Groups]mta.GroupState
	verdict BurstVerdict
}

func (h *recordingHook) OnBurst(data []byte, codeLength int, pre [Groups]mta.GroupState, replay bool) BurstVerdict {
	h.calls++
	if replay {
		h.replays++
	}
	h.lastPre = pre
	return h.verdict
}

func TestHookSeesPreBurstState(t *testing.T) {
	h := &recordingHook{verdict: BurstVerdict{Injected: 2, Detected: true}}
	ch := New(Config{ExactData: true, Fault: h})
	data := randomSector(rand.New(rand.NewSource(3)))
	if err := ch.SendBurst(data, 0); err != nil {
		t.Fatal(err)
	}
	if h.calls != 1 {
		t.Fatalf("hook called %d times, want 1", h.calls)
	}
	if h.lastPre != [Groups]mta.GroupState{mta.IdleGroupState(), mta.IdleGroupState()} {
		t.Fatalf("first burst should see idle pre-state, got %v", h.lastPre)
	}
	if got := ch.LastBurstVerdict(); got != h.verdict {
		t.Fatalf("verdict not latched: %+v", got)
	}
}

func TestHookNotDispatchedInExpectedMode(t *testing.T) {
	h := &recordingHook{}
	ch := New(Config{ExactData: false, Fault: h})
	if err := ch.SendBurst(nil, 0); err != nil {
		t.Fatal(err)
	}
	if h.calls != 0 {
		t.Fatal("hook must not fire in expected mode")
	}
}

func TestReplayBurstAccounting(t *testing.T) {
	for _, codeLength := range []int{0, 3, 6} {
		prof := obs.NewProfile()
		h := &recordingHook{}
		ch := New(Config{ExactData: true, Fault: h, Profile: prof, Record: true})
		data := randomSector(rand.New(rand.NewSource(5)))
		if err := ch.SendBurst(data, codeLength); err != nil {
			t.Fatal(err)
		}
		before := ch.Stats()
		if err := ch.ReplayBurst(data, codeLength); err != nil {
			t.Fatal(err)
		}
		after := ch.Stats()

		if after.ReplayBursts != 1 {
			t.Fatalf("len %d: ReplayBursts = %d, want 1", codeLength, after.ReplayBursts)
		}
		if !floats.Eq(after.DataBits, before.DataBits) {
			t.Fatalf("len %d: replay must not add data bits", codeLength)
		}
		if !floats.Eq(after.WireEnergy, before.WireEnergy) || !floats.Eq(after.LogicEnergy, before.LogicEnergy) {
			t.Fatalf("len %d: replay leaked into payload energy", codeLength)
		}
		if after.ReplayEnergy <= before.ReplayEnergy {
			t.Fatalf("len %d: replay burned no energy", codeLength)
		}
		if after.BusyUIs <= before.BusyUIs {
			t.Fatalf("len %d: replay occupied no wire time", codeLength)
		}
		if after.MTABursts != before.MTABursts || after.SparseBursts != before.SparseBursts {
			t.Fatalf("len %d: replay must not count as a payload burst", codeLength)
		}
		if after.Violations != 0 {
			t.Fatalf("len %d: replay produced %d transition violations", codeLength, after.Violations)
		}

		// TotalEnergy includes the replay, and the profiler's PhaseReplay
		// cell group reconciles with Stats.ReplayEnergy exactly.
		if got, want := after.TotalEnergy(), after.WireEnergy+after.PostambleEnergy+after.LogicEnergy+after.ReplayEnergy; !floats.Eq(got, want) {
			t.Fatalf("len %d: TotalEnergy %g != partition %g", codeLength, got, want)
		}
		replayFJ := prof.PhaseEnergy(obs.PhaseReplay)
		if rel := math.Abs(replayFJ-after.ReplayEnergy) / math.Max(after.ReplayEnergy, 1); rel > 1e-9 {
			t.Fatalf("len %d: profile replay phase %g != stats %g", codeLength, replayFJ, after.ReplayEnergy)
		}
		if rel := math.Abs(prof.TotalEnergy()-after.TotalEnergy()) / math.Max(after.TotalEnergy(), 1); rel > 1e-9 {
			t.Fatalf("len %d: profile total %g != stats total %g", codeLength, prof.TotalEnergy(), after.TotalEnergy())
		}

		// The hook observed the retransmission as a replay.
		if h.replays != 1 {
			t.Fatalf("len %d: hook saw %d replays, want 1", codeLength, h.replays)
		}

		// The event record tags the retransmission.
		events := ch.Events()
		last := events[len(events)-1]
		if last.Kind != EventReplay || last.CodeLength != codeLength {
			t.Fatalf("len %d: last event %+v, want EventReplay", codeLength, last)
		}
	}
}

func TestReplayBurstErrors(t *testing.T) {
	ch := New(Config{ExactData: false})
	if err := ch.ReplayBurst(make([]byte, BurstBytes), 0); err == nil {
		t.Fatal("expected-mode replay should error")
	}
	ch = New(Config{ExactData: true})
	if err := ch.ReplayBurst(make([]byte, 3), 0); err == nil {
		t.Fatal("short replay payload should error")
	}
	if err := ch.ReplayBurst(make([]byte, BurstBytes), 17); err == nil {
		t.Fatal("unknown code length should error")
	}
}

func TestReplayAdvancesWireState(t *testing.T) {
	// A replayed burst re-encodes from wherever the wires are, so a
	// subsequent normal burst must still be transition-legal.
	ch := New(Config{ExactData: true})
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		data := randomSector(r)
		if err := ch.SendBurst(data, 3); err != nil {
			t.Fatal(err)
		}
		if err := ch.ReplayBurst(data, 3); err != nil {
			t.Fatal(err)
		}
		if err := ch.SendBurst(data, 0); err != nil {
			t.Fatal(err)
		}
		ch.Postamble()
		ch.Idle(4)
	}
	if v := ch.Stats().Violations; v != 0 {
		t.Fatalf("replay seams produced %d violations", v)
	}
}
