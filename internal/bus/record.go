package bus

// Optional event recording: when enabled, the channel keeps the ordered
// sequence of bursts (with payloads), postambles, and idles it carried.
// Integration tests replay the record through an independent codec stack
// to prove the two models agree bit-for-bit and joule-for-joule.

// EventKind tags a recorded bus event.
type EventKind uint8

// Event kinds.
const (
	EventBurst EventKind = iota
	EventPostamble
	EventIdle
	// EventReplay is an EDC-triggered retransmission of a prior burst
	// (only appears when a fault hook and replay are active).
	EventReplay
)

// Event is one recorded bus action.
type Event struct {
	Kind EventKind
	// CodeLength is the burst encoding (0 = MTA); bursts only.
	CodeLength int
	// Data is the burst payload (exact mode only); bursts only.
	Data []byte
	// IdleUIs is the idle duration; idles only.
	IdleUIs int64
}

// enableRecording turns on event capture (set via Config.Record).
func (ch *Channel) record(e Event) {
	if !ch.recording {
		return
	}
	ch.events = append(ch.events, e)
}

// Events returns a deep snapshot of the recorded sequence (nil unless
// Config.Record). Payload slices are copied, so callers may hold or
// mutate the result while the channel keeps running.
func (ch *Channel) Events() []Event {
	if ch.events == nil {
		return nil
	}
	out := make([]Event, len(ch.events))
	copy(out, ch.events)
	for i := range out {
		if out[i].Data != nil {
			out[i].Data = append([]byte(nil), out[i].Data...)
		}
	}
	return out
}
