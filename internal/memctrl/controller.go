package memctrl

import (
	"fmt"

	"smores/internal/bus"
	"smores/internal/core"
	"smores/internal/gddr6x"
	"smores/internal/obs"
	"smores/internal/rng"
	"smores/internal/stats"
)

// Stats reports controller activity.
type Stats struct {
	Clock          int64
	ReadsServed    int64
	WritesServed   int64
	ReadLatencySum int64 // arrive → data decoded, reads only
	SparseReads    int64
	SparseWrites   int64
	// DecisionMismatches counts disagreements between the DRAM-side and
	// GPU-side codec decisions — the mechanism's invariant says zero.
	DecisionMismatches int64
	// BusConflicts counts data-slot overlaps — scheduling invariant, zero.
	// (Replay overruns are latency, not conflicts: the stretched
	// reservation holds later column commands back.)
	BusConflicts int64
	// Replays counts EDC-triggered retransmitted bursts; ReplayClocks is
	// the total command clocks they occupied (backoff + re-sent slots).
	Replays      int64
	ReplayClocks int64
	// ReplayFailures counts bursts still dirty after the retry budget.
	ReplayFailures int64
	// DegradedBursts counts payload bursts sent while the controller was
	// in the MTA-only graceful-degradation state (the burst would
	// otherwise have been eligible for a sparse code).
	DegradedBursts int64
	// MaxGapClocks is the largest idle span observed between transfers —
	// dominated by the refresh shadow (tRFC under REFab, tRFCpb-ish under
	// REFpb).
	MaxGapClocks int64
}

// Merge folds another controller's snapshot into s — the multi-channel
// roll-up path. Counters add; Clock and MaxGapClocks take the maximum,
// because sharded channels advance in parallel wall-clock (the merged
// Clock is the slowest shard, exactly like the lockstep interleaver's
// shared clock).
func (s *Stats) Merge(o Stats) {
	if o.Clock > s.Clock {
		s.Clock = o.Clock
	}
	s.ReadsServed += o.ReadsServed
	s.WritesServed += o.WritesServed
	s.ReadLatencySum += o.ReadLatencySum
	s.SparseReads += o.SparseReads
	s.SparseWrites += o.SparseWrites
	s.DecisionMismatches += o.DecisionMismatches
	s.BusConflicts += o.BusConflicts
	s.Replays += o.Replays
	s.ReplayClocks += o.ReplayClocks
	s.ReplayFailures += o.ReplayFailures
	s.DegradedBursts += o.DegradedBursts
	if o.MaxGapClocks > s.MaxGapClocks {
		s.MaxGapClocks = o.MaxGapClocks
	}
}

// Equal reports exact equality of two snapshots — the comparison the
// sequential vs. sharded differential gates use.
func (s Stats) Equal(o Stats) bool {
	return s.Clock == o.Clock &&
		s.ReadsServed == o.ReadsServed &&
		s.WritesServed == o.WritesServed &&
		s.ReadLatencySum == o.ReadLatencySum &&
		s.SparseReads == o.SparseReads &&
		s.SparseWrites == o.SparseWrites &&
		s.DecisionMismatches == o.DecisionMismatches &&
		s.BusConflicts == o.BusConflicts &&
		s.Replays == o.Replays &&
		s.ReplayClocks == o.ReplayClocks &&
		s.ReplayFailures == o.ReplayFailures &&
		s.DegradedBursts == o.DegradedBursts &&
		s.MaxGapClocks == o.MaxGapClocks
}

// Controller drives one GDDR6X channel. Not safe for concurrent use;
// advance it with Tick.
type Controller struct {
	cfg Config
	dev *gddr6x.Device
	ch  *bus.Channel

	clock  int64
	readQ  []*Request
	writeQ []*Request

	writeMode  bool
	refreshing bool
	// busReservedUntil is the clock through which the data bus is booked
	// (dense slots when undecided, stretched slots once a sparse length
	// commits). Column commands whose data would start earlier are held.
	busReservedUntil int64
	// cmdBusyTill models command-bus occupancy: GDDR6-style ACTIVATE
	// commands span two command clocks, so an ACT displaces the column
	// command that would have used the next slot — the paper's dominant
	// source of one-clock data-bus gaps.
	cmdBusyTill int64

	// pending is the most recently placed transfer (valid when hasPending);
	// its encoding may still be undecided and its trailing idle
	// unaccounted. Held by value so the steady-state tick path allocates
	// nothing per transfer.
	pending    xfer
	hasPending bool

	dramTracker core.GapTracker
	gpuTracker  core.GapTracker

	// EDC replay state (see replay.go). replay holds the defaulted config;
	// faultWin is the detected-rate ring buffer backing the graceful
	// degradation decision (nil when degradation is disabled), and
	// degraded is the MTA-only hysteresis state.
	replay       ReplayConfig
	faultWin     []bool
	faultWinIdx  int
	faultWinFill int
	faultWinHits int
	degraded     bool

	// payload generates random burst data in exact-data mode (encrypted
	// traffic is uniform random, so synthesized payloads are faithful).
	payload *rng.RNG
	buf     [bus.BurstBytes]byte

	completions []*Request // sorted by Done
	onReadDone  func(*Request)

	readGaps  *stats.Histogram
	writeGaps *stats.Histogram
	st        Stats

	// m holds live obs instrument handles (all nil when Config.Obs is
	// unset; every method is nil-safe). tr is the cycle-level tracer (nil
	// disables emission; call sites guard so the disabled path never
	// constructs an event).
	m      ctrlMetrics
	tr     *obs.Tracer
	chanID int32
	// lastCodeLen/haveBurst track the codec class of the previous burst
	// for EvCodecSwitch trace instants.
	lastCodeLen int
	haveBurst   bool
}

// xfer tracks one data transfer through decision and idle accounting.
type xfer struct {
	req       *Request
	cmdAt     int64
	dataStart int64
	kind      Kind
	decided   bool
	codeLen   int
	postamble bool
	accounted bool // trailing idle accounted
	// replayClocks is the bus time EDC replay traffic consumed right
	// after this transfer's slot (0 when the link is clean); the trailing
	// idle accounting subtracts it from the observed span.
	replayClocks int64
}

// New builds a controller.
func New(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	dev, err := gddr6x.NewDevice(cfg.Timing)
	if err != nil {
		return nil, err
	}
	if cfg.Policy == OptimizedMTA {
		cfg.Bus.LevelShiftedIdle = true
	}
	if cfg.Fault != nil {
		cfg.Bus.Fault = cfg.Fault
	}
	// Propagate observability into the owned submodules: the channel
	// registers its energy counters and the device its command counters
	// under the same label set as the controller's own series.
	if cfg.Obs != nil {
		cfg.Bus.Obs = cfg.Obs
		cfg.Bus.ObsLabels = cfg.ObsLabels
		dev.AttachMetrics(cfg.Obs, cfg.ObsLabels...)
	}
	c := &Controller{
		cfg:       cfg,
		dev:       dev,
		ch:        bus.New(cfg.Bus),
		readGaps:  stats.NewHistogram(cfg.GapHistBuckets),
		writeGaps: stats.NewHistogram(cfg.GapHistBuckets),
		m:         newCtrlMetrics(cfg.Obs, cfg.ObsLabels, cfg.GapHistBuckets),
		tr:        cfg.Tracer,
		chanID:    int32(cfg.Channel),
	}
	if cfg.Bus.ExactData {
		c.payload = rng.New(0x5310_4E5)
	}
	if cfg.Fault != nil {
		c.replay = cfg.Replay.withDefaults()
		if c.replay.DegradeThreshold > 0 {
			c.faultWin = make([]bool, c.replay.DegradeWindow)
		}
	}
	return c, nil
}

// OnReadDone registers the completion callback (data fully arrived and
// decoded). Must be set before ticking if completions matter.
func (c *Controller) OnReadDone(f func(*Request)) { c.onReadDone = f }

// Clock returns the current command clock.
func (c *Controller) Clock() int64 { return c.clock }

// Stats returns a snapshot of controller statistics.
func (c *Controller) Stats() Stats { return c.st }

// BusStats returns the channel energy/occupancy statistics.
func (c *Controller) BusStats() bus.Stats { return c.ch.Stats() }

// BusEvents returns the recorded bus event sequence (empty unless
// Config.Bus.Record was set).
func (c *Controller) BusEvents() []bus.Event { return c.ch.Events() }

// ReadGapHistogram returns a snapshot of idle data-bus clocks observed
// after read transfers (Fig. 5a). The clone is independent of the
// controller: further ticks do not mutate it.
func (c *Controller) ReadGapHistogram() *stats.Histogram { return c.readGaps.Clone() }

// WriteGapHistogram returns a snapshot of idle clocks after write
// transfers (Fig. 5b); see ReadGapHistogram for aliasing guarantees.
func (c *Controller) WriteGapHistogram() *stats.Histogram { return c.writeGaps.Clone() }

// QueueLens returns the current read and write queue depths.
func (c *Controller) QueueLens() (reads, writes int) {
	return len(c.readQ), len(c.writeQ)
}

// Enqueue offers a request; it reports false when the target queue is
// full (the caller must retry later — this is the backpressure path).
func (c *Controller) Enqueue(r *Request) bool {
	r.Addr = c.cfg.Timing.MapSector(r.Sector)
	r.Arrive = c.clock
	switch r.Kind {
	case Read:
		if len(c.readQ) >= c.cfg.ReadQueueCap {
			return false
		}
		c.readQ = append(c.readQ, r)
	case Write:
		if len(c.writeQ) >= c.cfg.WriteQueueCap {
			return false
		}
		c.writeQ = append(c.writeQ, r)
	default:
		panic("memctrl: unknown request kind")
	}
	return true
}

// decisionDeadline returns how long after a column command the encoding
// decision may wait for the next command before it must commit.
func (c *Controller) decisionDeadline() int64 {
	if c.cfg.Policy == SMOREs && c.cfg.Scheme.Detection == core.Conservative {
		return int64(c.cfg.Scheme.Window())
	}
	// Exhaustive (and the baselines): the data must be encoded just
	// before it leaves at RL; leave a small encode margin.
	d := c.cfg.Timing.RL - 4
	if d < 1 {
		d = 1
	}
	return d
}

// Tick advances one command clock.
func (c *Controller) Tick() {
	c.st.Clock = c.clock
	c.m.clock.Set(c.clock)
	c.m.readQ.Set(int64(len(c.readQ)))
	c.m.writeQ.Set(int64(len(c.writeQ)))
	c.deliverCompletions()

	// Encoding decision deadline for the pending transfer: no follow-up
	// command has arrived, so both sides know the gap is at least the
	// deadline and commit on that basis (conservative detection instead
	// falls back to MTA here).
	if c.hasPending && !c.pending.decided && c.clock-c.pending.cmdAt > c.decisionDeadline() {
		proxy := int(c.decisionDeadline()) - core.BurstSlotClocks
		c.decidePending(proxy, proxy, false, c.pending.kind)
	}

	if c.dev.Busy(c.clock) {
		c.clock++
		return
	}

	if c.cfg.Refresh == PerBank {
		if c.issuePerBankRefresh() {
			c.clock++
			return
		}
	} else {
		if c.dev.RefreshDue(c.clock) {
			c.refreshing = true
		}
		if c.refreshing {
			if c.issueForRefresh() {
				c.clock++
				return
			}
			// No refresh-related command issuable this clock: fall through
			// so in-flight banks can finish their row cycles.
		}
	}

	c.updateMode()

	if !c.refreshing && c.clock >= c.cmdBusyTill {
		// Column commands claim their slot; activates and precharges use
		// the free slots between them (tCCD leaves every other clock
		// open). Because a GDDR6-style ACTIVATE spans two command clocks,
		// an ACT started in a free slot spills into the next column slot
		// and slips that transfer by one clock — the paper's §IV-A
		// dominant source of one-clock data-bus gaps.
		if c.issueColumn() || c.issuePrep(c.activeQueue()) || c.issuePrep(c.inactiveQueue()) ||
			c.issueClosePage() {
			c.clock++
			return
		}
	}
	c.clock++
}

// Drain runs the controller until all queued and in-flight work has
// completed or maxClocks elapse; it returns false on timeout. No new
// requests arrive during a drain, so the inert clocks between events are
// skipped (unless Config.NoEventSkip pins the legacy per-clock loop).
func (c *Controller) Drain(maxClocks int64) bool {
	deadline := c.clock + maxClocks
	for (len(c.readQ) > 0 || len(c.writeQ) > 0 || len(c.completions) > 0) && c.clock < deadline {
		if !c.skipThenTick(deadline) {
			break
		}
	}
	// Let the final pending decision and completions flush. The legacy
	// loop ticked a fixed count; each Tick advances the clock by exactly
	// one, so the clock-targeted form is identical.
	target := c.clock + c.cfg.Timing.RL + int64(core.MaxSparseSymbols) + c.decisionDeadline() + 4
	if target > deadline {
		target = deadline
	}
	for c.clock < target {
		if !c.skipThenTick(target) {
			break
		}
	}
	return len(c.readQ) == 0 && len(c.writeQ) == 0 && len(c.completions) == 0
}

// skipThenTick advances to the next event (when skipping is enabled) and
// runs one Tick. It reports false when the skip alone reached limit, in
// which case no Tick ran.
func (c *Controller) skipThenTick(limit int64) bool {
	if !c.cfg.NoEventSkip {
		if t := c.NextEventClock(); t > c.clock {
			if t > limit {
				t = limit
			}
			c.SkipTo(t)
			if c.clock >= limit {
				return false
			}
		}
	}
	c.Tick()
	return true
}

func (c *Controller) activeQueue() *[]*Request {
	if c.writeMode {
		return &c.writeQ
	}
	return &c.readQ
}

func (c *Controller) inactiveQueue() *[]*Request {
	if c.writeMode {
		return &c.readQ
	}
	return &c.writeQ
}

func (c *Controller) updateMode() {
	if c.writeMode {
		if len(c.writeQ) == 0 || (len(c.writeQ) <= c.cfg.WriteLo && len(c.readQ) > 0) {
			c.writeMode = false
		}
		return
	}
	if len(c.writeQ) >= c.cfg.WriteHi || (len(c.readQ) == 0 && len(c.writeQ) > 0) {
		c.writeMode = true
	}
}

// issueForRefresh closes banks and fires REFab. Returns true if it issued
// a command this clock.
func (c *Controller) issueForRefresh() bool {
	if c.dev.CanRefresh(c.clock) {
		if err := c.dev.Refresh(c.clock); err != nil {
			panic("memctrl: " + err.Error())
		}
		c.refreshing = false
		if c.tr != nil {
			c.tr.Emit(obs.TraceEvent{Cycle: c.clock, Dur: c.cfg.Timing.TRFC,
				Type: obs.EvREFab, Channel: c.chanID, Bank: -1})
		}
		return true
	}
	for b := 0; b < c.cfg.Timing.Banks; b++ {
		if _, open := c.dev.OpenRow(b); open && c.dev.CanPrecharge(b, c.clock) {
			if err := c.dev.Precharge(b, c.clock); err != nil {
				panic("memctrl: " + err.Error())
			}
			if c.tr != nil {
				c.tr.Emit(obs.TraceEvent{Cycle: c.clock, Dur: 1, Type: obs.EvPRE,
					Channel: c.chanID, Bank: int32(b)})
			}
			return true
		}
	}
	return false
}

// issueColumn issues the first legal READ/WRITE from the active queue
// (FR-FCFS: the queue scan naturally prefers older requests; row hits are
// the only issuable ones).
func (c *Controller) issueColumn() bool {
	q := c.activeQueue()
	for i, r := range *q {
		var ok bool
		lat := c.cfg.Timing.RL
		if r.Kind == Read {
			ok = c.dev.CanRead(r.Addr, c.clock)
		} else {
			lat = c.cfg.Timing.WL
			ok = c.dev.CanWrite(r.Addr, c.clock)
		}
		lat += c.cfg.ExtraCodecLatency // must match placeTransfer's data start
		// Hold the command if its data would start inside a booked slot
		// (e.g. a read stretched across a gap; write data is buffered).
		if ok && c.clock+lat < c.busReservedUntil {
			ok = false
		}
		if !ok {
			continue
		}
		var err error
		if r.Kind == Read {
			err = c.dev.Read(r.Addr, c.clock)
		} else {
			err = c.dev.Write(r.Addr, c.clock)
		}
		if err != nil {
			panic("memctrl: " + err.Error())
		}
		if c.tr != nil {
			ev := obs.EvRD
			if r.Kind == Write {
				ev = obs.EvWR
			}
			c.tr.Emit(obs.TraceEvent{Cycle: c.clock, Dur: 1, Type: ev,
				Channel: c.chanID, Bank: int32(r.Addr.Bank), Arg: int64(r.Addr.Row)})
		}
		*q = append((*q)[:i], (*q)[i+1:]...)
		c.placeTransfer(r)
		return true
	}
	return false
}

// issuePrep issues one PRECHARGE or ACTIVATE needed by the queue, oldest
// request first. Activates get command-bus priority over column commands
// at the call site ordering in Tick — per the paper, GPU controllers
// prioritize activates to sustain bank-level parallelism, and those stolen
// command slots are the dominant source of one-clock data-bus gaps.
func (c *Controller) issuePrep(q *[]*Request) bool {
	// Per-bank dedup via a bitmask: banks are ≤ 64 (validated), and the
	// mask keeps this per-tick path allocation-free (it used to build a
	// map here — the single hottest allocation site in a fleet run).
	var prepped uint64
	for _, r := range *q {
		if prepped&(1<<uint(r.Addr.Bank)) != 0 {
			continue
		}
		prepped |= 1 << uint(r.Addr.Bank)
		if c.dev.RowHit(r.Addr) {
			continue
		}
		if c.dev.NeedsPrecharge(r.Addr) {
			if c.dev.CanPrecharge(r.Addr.Bank, c.clock) {
				if err := c.dev.Precharge(r.Addr.Bank, c.clock); err != nil {
					panic("memctrl: " + err.Error())
				}
				if c.tr != nil {
					c.tr.Emit(obs.TraceEvent{Cycle: c.clock, Dur: 1, Type: obs.EvPRE,
						Channel: c.chanID, Bank: int32(r.Addr.Bank)})
				}
				return true
			}
			continue
		}
		if c.dev.CanActivate(r.Addr.Bank, c.clock) {
			if err := c.dev.Activate(r.Addr.Bank, r.Addr.Row, c.clock); err != nil {
				panic("memctrl: " + err.Error())
			}
			c.cmdBusyTill = c.clock + 2 // ACT is a two-clock command
			if c.tr != nil {
				c.tr.Emit(obs.TraceEvent{Cycle: c.clock, Dur: 2, Type: obs.EvACT,
					Channel: c.chanID, Bank: int32(r.Addr.Bank), Arg: int64(r.Addr.Row)})
			}
			return true
		}
	}
	return false
}

// issuePerBankRefresh services round-robin REFpb when due: close the
// target bank if needed, then refresh it. Other banks keep serving, so
// only a short single-bank shadow appears on the bus.
func (c *Controller) issuePerBankRefresh() bool {
	if !c.dev.PerBankRefreshDue(c.clock) {
		return false
	}
	b := c.dev.NextRefreshBank()
	if _, open := c.dev.OpenRow(b); open {
		if c.dev.CanPrecharge(b, c.clock) {
			if err := c.dev.Precharge(b, c.clock); err != nil {
				panic("memctrl: " + err.Error())
			}
			if c.tr != nil {
				c.tr.Emit(obs.TraceEvent{Cycle: c.clock, Dur: 1, Type: obs.EvPRE,
					Channel: c.chanID, Bank: int32(b)})
			}
			return true
		}
		return false
	}
	if c.dev.CanRefreshBank(b, c.clock) {
		if err := c.dev.RefreshBank(b, c.clock); err != nil {
			panic("memctrl: " + err.Error())
		}
		if c.tr != nil {
			c.tr.Emit(obs.TraceEvent{Cycle: c.clock, Dur: c.cfg.Timing.TRFCPB,
				Type: obs.EvREFpb, Channel: c.chanID, Bank: int32(b)})
		}
		return true
	}
	return false
}

// issueClosePage implements the ClosedPage ablation: precharge any open
// bank whose row no queued request wants.
func (c *Controller) issueClosePage() bool {
	if c.cfg.Pages != ClosedPage {
		return false
	}
	for b := 0; b < c.cfg.Timing.Banks; b++ {
		row, open := c.dev.OpenRow(b)
		if !open || !c.dev.CanPrecharge(b, c.clock) {
			continue
		}
		wanted := false
		for _, q := range []*[]*Request{&c.readQ, &c.writeQ} {
			for _, r := range *q {
				if r.Addr.Bank == b && r.Addr.Row == row {
					wanted = true
					break
				}
			}
			if wanted {
				break
			}
		}
		if wanted {
			continue
		}
		if err := c.dev.Precharge(b, c.clock); err != nil {
			panic("memctrl: " + err.Error())
		}
		if c.tr != nil {
			c.tr.Emit(obs.TraceEvent{Cycle: c.clock, Dur: 1, Type: obs.EvPRE,
				Channel: c.chanID, Bank: int32(b)})
		}
		return true
	}
	return false
}

// placeTransfer books the data slot for a just-issued column command,
// decides the previous pending transfer's encoding, and accounts the idle
// span between them.
func (c *Controller) placeTransfer(r *Request) {
	lat := c.cfg.Timing.RL
	if r.Kind == Write {
		lat = c.cfg.Timing.WL
	}
	lat += c.cfg.ExtraCodecLatency
	x := xfer{req: r, cmdAt: c.clock, dataStart: c.clock + lat, kind: r.Kind}
	r.IssuedAt = c.clock
	r.DataStart = x.dataStart

	// Both ends of the link observe every column command; the DRAM-side
	// and GPU-side trackers must always agree (verified in decidePending).
	gapDRAM := c.dramTracker.Observe(c.clock)
	gapGPU := c.gpuTracker.Observe(c.clock)

	if c.hasPending {
		if !c.pending.decided {
			delta := c.clock - c.pending.cmdAt
			known := true
			if c.cfg.Policy == SMOREs && c.cfg.Scheme.Detection == core.Conservative {
				known = delta <= int64(c.cfg.Scheme.Window())
			}
			c.decidePending(gapDRAM, gapGPU, known, r.Kind)
		}
		if !c.pending.accounted {
			c.accountIdle(&c.pending, x.dataStart, x.kind)
		}
	}
	c.pending = x
	c.hasPending = true
	if end := x.dataStart + core.BurstSlotClocks; end > c.busReservedUntil {
		c.busReservedUntil = end
	}
	if c.tr != nil {
		c.tr.Emit(obs.TraceEvent{Cycle: c.clock, Type: obs.EvQueueDepth,
			Channel: c.chanID, Bank: -1,
			Arg: int64(len(c.readQ)), Arg2: int64(len(c.writeQ))})
	}
}

// decidePending commits the pending transfer's encoding. gap is the idle
// clocks available after its dense slot as the DRAM-side tracker computed
// it; gpuGap is the same quantity from the GPU-side tracker; known is the
// conservative-window flag; nextKind is the kind of the upcoming transfer
// (sparse stretching is only applied between same-direction transfers —
// a direction switch has turnaround dead time instead of an exploitable
// gap).
func (c *Controller) decidePending(gap, gpuGap int, known bool, nextKind Kind) {
	p := &c.pending
	codeLen := 0
	if c.cfg.Policy == SMOREs && nextKind == p.kind {
		if c.degraded {
			// Graceful degradation: the detected-error rate crossed the
			// threshold, so stay on the dense MTA code (shorter wire
			// exposure) until the rate recovers. Count the burst that
			// would otherwise have been sparse-eligible.
			c.st.DegradedBursts++
			c.m.degradedBursts.Inc()
		} else {
			codeLen = c.cfg.Scheme.SelectLength(gap, known)
		}
	}
	// The other end of the link (GPU for reads, DRAM for writes) mirrors
	// the decision from its own tracker over the same command stream;
	// verify the mechanism's central invariant.
	if mirror := c.mirrorDecision(gpuGap, known, nextKind, p.kind); mirror != codeLen {
		c.st.DecisionMismatches++
		c.m.mismatches.Inc()
	}

	p.decided = true
	p.codeLen = codeLen
	p.postamble = codeLen == 0 && gap > 0 && c.cfg.Policy != OptimizedMTA
	p.req.CodeLength = codeLen
	if end := p.dataStart + int64(core.SlotClocks(codeLen)); end > c.busReservedUntil {
		c.busReservedUntil = end
	}

	var data []byte
	if c.payload != nil {
		c.payload.Fill(c.buf[:])
		data = c.buf[:]
	}
	if err := c.ch.SendBurst(data, codeLen); err != nil {
		panic("memctrl: " + err.Error())
	}
	// EDC replay: if the link-reliability hook detected an error on the
	// burst, retransmit it now. The replay traffic's clocks extend the bus
	// reservation (holding later column commands back) and the read's
	// completion time; accountIdle subtracts them from the trailing span.
	p.replayClocks = c.runReplay(p, data)
	if p.replayClocks > 0 {
		c.st.ReplayClocks += p.replayClocks
		if end := p.dataStart + int64(core.SlotClocks(codeLen)) + p.replayClocks; end > c.busReservedUntil {
			c.busReservedUntil = end
		}
	}
	if p.postamble {
		c.ch.Postamble()
	}

	if codeLen != 0 {
		if p.kind == Read {
			c.st.SparseReads++
			c.m.sparseReads.Inc()
		} else {
			c.st.SparseWrites++
			c.m.sparseWrites.Inc()
		}
	}

	if c.tr != nil {
		ev := obs.EvBurstMTA
		if codeLen != 0 {
			ev = obs.EvBurstSparse
		}
		c.tr.Emit(obs.TraceEvent{Cycle: p.dataStart,
			Dur: int64(core.SlotClocks(codeLen)), Type: ev,
			Channel: c.chanID, Bank: int32(p.req.Addr.Bank), Arg: int64(codeLen)})
		if p.postamble {
			c.tr.Emit(obs.TraceEvent{
				Cycle: p.dataStart + core.BurstSlotClocks, Dur: 1,
				Type: obs.EvPostamble, Channel: c.chanID, Bank: -1})
		}
		if c.haveBurst && (codeLen == 0) != (c.lastCodeLen == 0) {
			c.tr.Emit(obs.TraceEvent{Cycle: p.dataStart, Type: obs.EvCodecSwitch,
				Channel: c.chanID, Bank: -1,
				Arg: int64(c.lastCodeLen), Arg2: int64(codeLen)})
		}
	}
	c.lastCodeLen = codeLen
	c.haveBurst = true

	if p.kind == Read {
		p.req.Done = p.dataStart + int64(core.SlotClocks(codeLen)) + p.replayClocks
		c.scheduleCompletion(p.req)
	} else {
		c.st.WritesServed++
		c.m.writesServed.Inc()
	}
}

// mirrorDecision recomputes the codec choice as the other end of the link
// would (GPU for reads, DRAM for writes), from the same observable
// command stream.
func (c *Controller) mirrorDecision(gap int, known bool, nextKind, kind Kind) int {
	if c.cfg.Policy != SMOREs || nextKind != kind {
		return 0
	}
	if c.degraded {
		// Both ends of the link observe the same EDC feedback stream, so
		// the MTA-only degradation state is mirrored without extra
		// signaling (see replay.go).
		return 0
	}
	return c.cfg.Scheme.SelectLength(gap, known)
}

// accountIdle charges the bus for the idle span between prev's slot and
// the next transfer's data start, and records the gap histograms.
func (c *Controller) accountIdle(prev *xfer, nextStart int64, nextKind Kind) {
	prev.accounted = true
	denseEnd := prev.dataStart + core.BurstSlotClocks
	span := nextStart - denseEnd
	if span < 0 {
		c.st.BusConflicts++
		c.m.conflicts.Inc()
		return
	}
	used := int64(0)
	if prev.codeLen > 0 {
		used = int64(prev.codeLen - core.BurstSlotClocks)
	} else if prev.postamble {
		used = 1
	}
	if span > c.st.MaxGapClocks {
		c.st.MaxGapClocks = span
	}
	c.m.maxGap.SetMax(span)
	// Replay traffic occupied part of the trailing span; only the
	// remainder is genuinely idle. A negative remainder from replay alone
	// is latency (the stretched reservation held the next command back at
	// issue time), not a scheduling conflict.
	idle := span - used - prev.replayClocks
	if idle < 0 {
		if span-used < 0 {
			c.st.BusConflicts++
			c.m.conflicts.Inc()
		}
		idle = 0
	}
	c.ch.Idle(idle * bus.UIsPerClock)
	if c.tr != nil && idle > 0 {
		c.tr.Emit(obs.TraceEvent{Cycle: denseEnd + used, Dur: idle,
			Type: obs.EvGap, Channel: c.chanID, Bank: -1, Arg: span})
		if c.cfg.Bus.LevelShiftedIdle || prev.codeLen > 0 {
			// The line parks via a level-shifting seam instead of a driven
			// postamble (optimized-MTA idle or a sparse code's built-in
			// return to mid-level).
			c.tr.Emit(obs.TraceEvent{Cycle: denseEnd + used, Type: obs.EvSeam,
				Channel: c.chanID, Bank: -1})
		}
	}
	if prev.kind == nextKind {
		if prev.kind == Read {
			c.readGaps.Add(int(span))
			c.m.readGaps.Observe(float64(span))
		} else {
			c.writeGaps.Add(int(span))
			c.m.writeGaps.Observe(float64(span))
		}
	}
}

// scheduleCompletion inserts a read into the completion list (kept sorted
// by Done; lists are short).
func (c *Controller) scheduleCompletion(r *Request) {
	i := len(c.completions)
	for i > 0 && c.completions[i-1].Done > r.Done {
		i--
	}
	c.completions = append(c.completions, nil)
	copy(c.completions[i+1:], c.completions[i:])
	c.completions[i] = r
}

func (c *Controller) deliverCompletions() {
	for len(c.completions) > 0 && c.completions[0].Done <= c.clock {
		r := c.completions[0]
		c.completions = c.completions[1:]
		c.st.ReadsServed++
		c.st.ReadLatencySum += r.Done - r.Arrive
		c.m.readsServed.Inc()
		c.m.readLatency.Add(r.Done - r.Arrive)
		if c.onReadDone != nil {
			c.onReadDone(r)
		}
	}
}

// Finish decides any still-pending transfer (treating the bus as idle
// afterwards) and delivers outstanding completions. Call once after the
// workload ends.
func (c *Controller) Finish() {
	if c.hasPending && !c.pending.decided {
		// End of trace: an arbitrarily long gap follows.
		gap := int(c.decisionDeadline()) - core.BurstSlotClocks
		if gap < 1 {
			gap = 1
		}
		known := c.cfg.Policy != SMOREs || c.cfg.Scheme.Detection != core.Conservative
		c.decidePending(gap, gap, known, c.pending.kind)
	}
	if len(c.completions) > 0 {
		c.clock = c.completions[len(c.completions)-1].Done + 1
		c.deliverCompletions()
	}
}

// AverageReadLatency returns mean read latency in clocks.
func (c *Controller) AverageReadLatency() float64 {
	if c.st.ReadsServed == 0 {
		return 0
	}
	return float64(c.st.ReadLatencySum) / float64(c.st.ReadsServed)
}

// Describe summarizes the controller configuration for reports.
func (c *Controller) Describe() string {
	if c.cfg.Policy == SMOREs {
		return fmt.Sprintf("%v(%v)", c.cfg.Policy, c.cfg.Scheme)
	}
	return c.cfg.Policy.String()
}
