package memctrl

import (
	"testing"

	"smores/internal/core"
	"smores/internal/rng"
)

// randomArrivals synthesizes a bursty read/write mix: clustered sectors
// for row locality, occasional far jumps for conflicts, and irregular
// inter-arrival gaps so the controller sees idle windows, write drains,
// and refresh shadows.
func randomArrivals(n int, seed uint64) []arrival {
	r := rng.New(seed)
	out := make([]arrival, n)
	var at int64
	base := uint64(0)
	for i := range out {
		switch r.Intn(8) {
		case 0:
			at += int64(r.Intn(40)) // think pause
		case 1:
			base = uint64(r.Intn(1 << 14))
		default:
			at += int64(r.Intn(3))
		}
		kind := Read
		if r.Intn(3) == 0 {
			kind = Write
		}
		out[i] = arrival{
			at:  at,
			req: &Request{ID: uint64(i), Kind: kind, Sector: base + uint64(r.Intn(64))},
		}
	}
	return out
}

// runArrivals drives the controller over the arrival stream. With skip
// enabled, the feed loop advances with NextEventClock/SkipTo bounded by
// the next arrival time — exactly the contract the GPU driver uses.
func runArrivals(t *testing.T, c *Controller, arrivals []arrival, skip bool) {
	t.Helper()
	i := 0
	for i < len(arrivals) {
		// Advance to the next controller event or the next arrival,
		// whichever is sooner (the skipped clocks are inert for both).
		if skip {
			if target := c.NextEventClock(); target > c.Clock() {
				if na := arrivals[i].at; target > na {
					target = na
				}
				c.SkipTo(target)
			}
		}
		for i < len(arrivals) && arrivals[i].at <= c.Clock() {
			if !c.Enqueue(arrivals[i].req) {
				break // queue full: retry after ticking
			}
			i++
		}
		c.Tick()
		if c.Clock() > 1<<22 {
			t.Fatal("controller livelocked")
		}
	}
	if !c.Drain(1 << 20) {
		t.Fatal("drain timed out")
	}
	c.Finish()
}

// TestEventSkipBitIdenticalStats proves the event-skipping loop produces
// bit-identical results to the legacy per-clock loop — controller stats,
// bus energy stats (float-for-float), and both gap histograms — across
// policies, refresh modes, page policies, and the exact-data path.
func TestEventSkipBitIdenticalStats(t *testing.T) {
	smores := core.Scheme{Specification: core.VariableCode, Detection: core.Exhaustive}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"baseline-refab", Config{Policy: BaselineMTA}},
		{"baseline-refpb", Config{Policy: BaselineMTA, Refresh: PerBank}},
		{"optimized-closedpage", Config{Policy: OptimizedMTA, Pages: ClosedPage}},
		{"smores-refab", Config{Policy: SMOREs, Scheme: smores}},
		{"smores-refpb-closedpage", Config{Policy: SMOREs, Scheme: smores,
			Refresh: PerBank, Pages: ClosedPage}},
		{"smores-conservative", Config{Policy: SMOREs,
			Scheme: core.Scheme{Specification: core.StaticCode, Detection: core.Conservative}}},
		{"smores-exactdata", func() Config {
			cfg := Config{Policy: SMOREs, Scheme: smores}
			cfg.Bus.ExactData = true
			return cfg
		}()},
		{"baseline-smallqueues", Config{Policy: BaselineMTA,
			ReadQueueCap: 4, WriteQueueCap: 4, WriteHi: 3, WriteLo: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const n = 3000
			legacyCfg := tc.cfg
			legacyCfg.NoEventSkip = true
			legacy := newCtrl(t, legacyCfg)
			skip := newCtrl(t, tc.cfg)

			runArrivals(t, legacy, randomArrivals(n, 42), false)
			runArrivals(t, skip, randomArrivals(n, 42), true)

			if legacy.Stats() != skip.Stats() {
				t.Errorf("controller stats diverge:\n legacy %+v\n skip   %+v",
					legacy.Stats(), skip.Stats())
			}
			if legacy.BusStats() != skip.BusStats() {
				t.Errorf("bus stats diverge:\n legacy %+v\n skip   %+v",
					legacy.BusStats(), skip.BusStats())
			}
			if !legacy.ReadGapHistogram().Equal(skip.ReadGapHistogram()) {
				t.Errorf("read gap histograms diverge:\n legacy %v\n skip   %v",
					legacy.ReadGapHistogram(), skip.ReadGapHistogram())
			}
			if !legacy.WriteGapHistogram().Equal(skip.WriteGapHistogram()) {
				t.Errorf("write gap histograms diverge:\n legacy %v\n skip   %v",
					legacy.WriteGapHistogram(), skip.WriteGapHistogram())
			}
			if legacy.Clock() != skip.Clock() {
				t.Errorf("final clocks diverge: legacy %d skip %d", legacy.Clock(), skip.Clock())
			}
		})
	}
}

// TestNextEventClockSkipsInertSpans sanity-checks that skipping actually
// engages (bit-identity alone would also pass if NextEventClock always
// returned "now" and the loop degraded to per-clock ticking): after a
// read's column command issues, the next event is its completion ~RL
// clocks out, and NextEventClock must jump there in one step.
func TestNextEventClockSkipsInertSpans(t *testing.T) {
	c := newCtrl(t, Config{Policy: BaselineMTA})
	if !c.Enqueue(&Request{ID: 1, Kind: Read, Sector: 7}) {
		t.Fatal("enqueue failed")
	}
	for i := 0; i < 64 && len(c.completions) == 0; i++ {
		c.Tick()
	}
	if len(c.completions) == 0 {
		t.Fatal("column command never issued")
	}
	target := c.NextEventClock()
	if jump := target - c.Clock(); jump < 3 {
		t.Errorf("NextEventClock jumped only %d clocks toward the completion at %d (now %d)",
			jump, c.completions[0].Done, c.Clock())
	}
	if !c.Drain(1 << 20) {
		t.Fatal("drain timed out")
	}
	c.Finish()
	if st := c.Stats(); st.ReadsServed != 1 {
		t.Fatalf("read not served: %+v", st)
	}
}

// BenchmarkDrainRefreshShadow measures the controller crossing an
// all-bank refresh shadow — the event-skipping loop's best case.
func BenchmarkDrainRefreshShadow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := New(Config{Policy: BaselineMTA})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 64; j++ {
			c.Enqueue(&Request{ID: uint64(j), Kind: Read, Sector: uint64(j)})
			c.Tick()
		}
		if !c.Drain(1 << 20) {
			b.Fatal("drain timed out")
		}
	}
}
