package memctrl

import (
	"math"
	"testing"

	"smores/internal/bus"
	"smores/internal/core"
	"smores/internal/fault"
	"smores/internal/mta"
	"smores/internal/obs"
)

// scriptHook is a deterministic link-reliability hook: the first
// failFirst dispatches (payload and replay alike) report a detected
// error, everything after is clean. It lets the degradation tests drive
// the hysteresis state machine without Monte Carlo noise.
type scriptHook struct {
	failFirst int
	calls     int
}

func (h *scriptHook) OnBurst(data []byte, codeLength int, pre [bus.Groups]mta.GroupState, replay bool) bus.BurstVerdict {
	h.calls++
	return bus.BurstVerdict{Detected: h.calls <= h.failFirst, Injected: 1}
}

func smoresCfg() Config {
	return Config{
		Policy: SMOREs,
		Scheme: core.Scheme{Specification: core.VariableCode, Detection: core.Exhaustive},
	}
}

func TestReplayConfigValidation(t *testing.T) {
	in, err := fault.New(fault.Config{Model: fault.ModelUniform, Rate: 0.01, Seed: 1, EDC: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := smoresCfg()
	cfg.Fault = in
	if _, err := New(cfg); err == nil {
		t.Fatal("fault hook without exact-data mode should be rejected")
	}
	cfg.Bus = bus.Config{ExactData: true}
	cfg.Replay = ReplayConfig{DegradeThreshold: 1.5}
	if _, err := New(cfg); err == nil {
		t.Fatal("degrade threshold above 1 should be rejected")
	}
	cfg.Replay = ReplayConfig{RetryBudget: -1}
	if _, err := New(cfg); err == nil {
		t.Fatal("negative retry budget should be rejected")
	}
	cfg.Replay = ReplayConfig{}
	if _, err := New(cfg); err != nil {
		t.Fatalf("valid replay config rejected: %v", err)
	}
}

// TestReplayCostsLatencyAndEnergy runs the same read stream over a clean
// and a noisy link and checks that replays surface as read latency, bus
// clocks, and ReplayEnergy — while the scheduling and mirroring
// invariants stay intact.
func TestReplayCostsLatencyAndEnergy(t *testing.T) {
	run := func(noisy bool) *Controller {
		cfg := smoresCfg()
		cfg.Bus = bus.Config{ExactData: true}
		if noisy {
			in, err := fault.New(fault.Config{Model: fault.ModelUniform, Rate: 0.02, Seed: 9, EDC: true})
			if err != nil {
				t.Fatal(err)
			}
			cfg.Fault = in
		}
		c := newCtrl(t, cfg)
		feed(t, c, seqReads(400, 0, 12))
		return c
	}
	clean, noisy := run(false), run(true)

	st := noisy.Stats()
	if st.Replays == 0 {
		t.Fatal("2% symbol noise with EDC over 400 bursts should trigger replays")
	}
	if st.ReplayClocks == 0 {
		t.Fatal("replays consumed no bus clocks")
	}
	if st.DecisionMismatches != 0 || st.BusConflicts != 0 {
		t.Fatalf("replay broke scheduling invariants: %+v", st)
	}
	if clean.Stats().Replays != 0 || clean.Stats().ReplayClocks != 0 {
		t.Fatalf("clean link replayed: %+v", clean.Stats())
	}

	bst := noisy.BusStats()
	if bst.ReplayBursts != st.Replays {
		t.Fatalf("bus saw %d replay bursts, controller booked %d", bst.ReplayBursts, st.Replays)
	}
	if bst.ReplayEnergy <= 0 {
		t.Fatal("replay traffic burned no energy")
	}
	if got, want := bst.TotalEnergy(), bst.WireEnergy+bst.PostambleEnergy+bst.LogicEnergy+bst.ReplayEnergy; math.Abs(got-want) > 1e-9*want {
		t.Fatalf("energy partition broke under replay: total %g != %g", got, want)
	}
	if bst.Violations != 0 {
		t.Fatalf("replay seams produced %d transition violations", bst.Violations)
	}

	if noisy.AverageReadLatency() <= clean.AverageReadLatency() {
		t.Fatalf("replays should cost latency: noisy %.2f vs clean %.2f clocks",
			noisy.AverageReadLatency(), clean.AverageReadLatency())
	}
}

// TestReplayPerRequestAccounting checks that per-request Replayed counts
// reconcile with the controller total on a read-only stream.
func TestReplayPerRequestAccounting(t *testing.T) {
	in, err := fault.New(fault.Config{Model: fault.ModelBursty, Rate: 0.02, Seed: 4, EDC: true, BurstLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := smoresCfg()
	cfg.Bus = bus.Config{ExactData: true}
	cfg.Fault = in
	c := newCtrl(t, cfg)
	total := 0
	c.OnReadDone(func(r *Request) { total += r.Replayed })
	feed(t, c, seqReads(300, 0, 10))
	st := c.Stats()
	if st.Replays == 0 {
		t.Fatal("bursty noise should trigger replays")
	}
	if int64(total) != st.Replays {
		t.Fatalf("per-request replays sum to %d, controller counted %d", total, st.Replays)
	}
}

// TestReplayBudgetExhaustion uses a hook that never comes clean: every
// corrupted burst must burn the full retry budget and count as a failure.
func TestReplayBudgetExhaustion(t *testing.T) {
	h := &scriptHook{failFirst: 1 << 30}
	cfg := smoresCfg()
	cfg.Bus = bus.Config{ExactData: true}
	cfg.Fault = h
	cfg.Replay = ReplayConfig{RetryBudget: 2}
	c := newCtrl(t, cfg)
	feed(t, c, seqReads(50, 0, 16))
	st := c.Stats()
	if st.ReplayFailures == 0 {
		t.Fatal("always-dirty link should exhaust the retry budget")
	}
	if st.Replays != 2*st.ReplayFailures {
		t.Fatalf("budget 2 should book 2 replays per failure: %d replays, %d failures",
			st.Replays, st.ReplayFailures)
	}
	if st.BusConflicts != 0 || st.DecisionMismatches != 0 {
		t.Fatalf("invariants violated: %+v", st)
	}
}

// TestDegradationEntersAndExits drives the windowed detected-rate
// estimator through its hysteresis: a dirty prefix pushes the controller
// into MTA-only, a clean tail recovers it.
func TestDegradationEntersAndExits(t *testing.T) {
	h := &scriptHook{failFirst: 60}
	cfg := smoresCfg()
	cfg.Bus = bus.Config{ExactData: true}
	cfg.Fault = h
	cfg.Replay = ReplayConfig{DegradeThreshold: 0.5, DegradeWindow: 8, RetryBudget: 1}
	c := newCtrl(t, cfg)

	sawDegraded := false
	c.OnReadDone(func(r *Request) {
		if c.Degraded() {
			sawDegraded = true
		}
	})
	feed(t, c, seqReads(300, 0, 14))

	st := c.Stats()
	if !sawDegraded {
		t.Fatal("dirty prefix never entered degradation")
	}
	if st.DegradedBursts == 0 {
		t.Fatal("degradation never forced an MTA burst")
	}
	if c.Degraded() {
		t.Fatal("clean tail should have exited degradation")
	}
	if st.SparseReads == 0 {
		t.Fatal("recovery should re-enable sparse encodings")
	}
	if st.DecisionMismatches != 0 {
		t.Fatalf("degradation desynced the link ends: %d mismatches", st.DecisionMismatches)
	}
}

// TestDegradationDisabledByDefault leaves DegradeThreshold zero: even an
// always-dirty link must never flip the controller into MTA-only.
func TestDegradationDisabledByDefault(t *testing.T) {
	h := &scriptHook{failFirst: 1 << 30}
	cfg := smoresCfg()
	cfg.Bus = bus.Config{ExactData: true}
	cfg.Fault = h
	cfg.Replay = ReplayConfig{RetryBudget: 1}
	c := newCtrl(t, cfg)
	feed(t, c, seqReads(100, 0, 14))
	if c.Degraded() || c.Stats().DegradedBursts != 0 {
		t.Fatalf("degradation fired with threshold 0: %+v", c.Stats())
	}
	if c.Stats().SparseReads == 0 {
		t.Fatal("sparse encoding should stay enabled")
	}
}

// TestReplayProfileConservation checks the PhaseReplay cells reconcile
// with Stats.ReplayEnergy and the profile total still matches the
// channel total under sustained replay traffic.
func TestReplayProfileConservation(t *testing.T) {
	in, err := fault.New(fault.Config{Model: fault.ModelEyeBiased, Rate: 0.02, Seed: 12, EDC: true})
	if err != nil {
		t.Fatal(err)
	}
	prof := obs.NewProfile()
	cfg := smoresCfg()
	cfg.Bus = bus.Config{ExactData: true, Profile: prof, MTALogicPerBit: -1, SparseLogicPerBit: -1}
	cfg.Fault = in
	c := newCtrl(t, cfg)
	feed(t, c, seqReads(300, 0, 10))

	st := c.BusStats()
	if st.ReplayEnergy <= 0 {
		t.Fatal("no replay energy accrued")
	}
	tol := 1e-9 * math.Max(st.TotalEnergy(), 1)
	if rp := prof.PhaseEnergy(obs.PhaseReplay); math.Abs(rp-st.ReplayEnergy) > tol {
		t.Fatalf("replay phase %.9g vs stats %.9g", rp, st.ReplayEnergy)
	}
	if got := prof.TotalEnergy(); math.Abs(got-st.TotalEnergy()) > tol {
		t.Fatalf("profile total %.9g vs stats %.9g", got, st.TotalEnergy())
	}
}
