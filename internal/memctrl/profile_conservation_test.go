package memctrl

import (
	"math"
	"testing"

	"smores/internal/bus"
	"smores/internal/core"
	"smores/internal/obs"
	"smores/internal/rng"
)

// TestProfileConservationAllPolicies drives real scheduling (arrival
// streams, postambles, level-shift seams, refresh gaps) through every
// policy × scheme in both accounting modes and checks that the energy
// profiler's cells sum to the channel's Stats.TotalEnergy — the
// conservation property the attribution layer guarantees.
func TestProfileConservationAllPolicies(t *testing.T) {
	schemes := []Config{
		{Policy: BaselineMTA},
		{Policy: OptimizedMTA},
		{Policy: SMOREs, Scheme: core.Scheme{Specification: core.StaticCode, Detection: core.Exhaustive}},
		{Policy: SMOREs, Scheme: core.Scheme{Specification: core.VariableCode, Detection: core.Exhaustive}},
		{Policy: SMOREs, Scheme: core.Scheme{Specification: core.StaticCode, Detection: core.Conservative}},
	}
	for si, base := range schemes {
		for _, exact := range []bool{false, true} {
			cfg := base
			prof := obs.NewProfile()
			cfg.Bus = bus.Config{ExactData: exact, Profile: prof,
				MTALogicPerBit: -1, SparseLogicPerBit: -1}
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(uint64(7 + si))
			var arrivals []arrival
			at := int64(0)
			for i := 0; i < 800; i++ {
				at += int64(r.Intn(10))
				kind := Read
				if r.Bool(0.3) {
					kind = Write
				}
				arrivals = append(arrivals, arrival{at: at, req: &Request{
					ID: uint64(i), Kind: kind, Sector: uint64(r.Intn(1 << 20)),
				}})
			}
			feed(t, c, arrivals)

			want := c.BusStats().TotalEnergy()
			got := prof.TotalEnergy()
			tol := 1e-9 * math.Max(want, 1)
			if math.Abs(got-want) > tol {
				t.Errorf("%s exact=%v: profile %.9g fJ vs stats %.9g fJ (diff %g)",
					c.Describe(), exact, got, want, got-want)
			}
			if want == 0 {
				t.Fatalf("%s exact=%v: no energy accounted", c.Describe(), exact)
			}
			// Phase partition must mirror the stats breakdown too.
			st := c.BusStats()
			wire := prof.PhaseEnergy(obs.PhaseMTAPayload) +
				prof.PhaseEnergy(obs.PhaseDBIWire) +
				prof.PhaseEnergy(obs.PhaseSparsePayload) +
				prof.PhaseEnergy(obs.PhaseIdleShift)
			if math.Abs(wire-st.WireEnergy) > tol {
				t.Errorf("%s exact=%v: wire phases %.9g vs stats %.9g",
					c.Describe(), exact, wire, st.WireEnergy)
			}
			if pa := prof.PhaseEnergy(obs.PhasePostamble); math.Abs(pa-st.PostambleEnergy) > tol {
				t.Errorf("%s exact=%v: postamble phase %.9g vs stats %.9g",
					c.Describe(), exact, pa, st.PostambleEnergy)
			}
			if lg := prof.PhaseEnergy(obs.PhaseLogic); math.Abs(lg-st.LogicEnergy) > tol {
				t.Errorf("%s exact=%v: logic phase %.9g vs stats %.9g",
					c.Describe(), exact, lg, st.LogicEnergy)
			}
			if rp := prof.PhaseEnergy(obs.PhaseReplay); math.Abs(rp-st.ReplayEnergy) > tol {
				t.Errorf("%s exact=%v: replay phase %.9g vs stats %.9g (must be 0 on a clean link)",
					c.Describe(), exact, rp, st.ReplayEnergy)
			}
		}
	}
}
