package memctrl

// Observability for the controller: the same quantities as Stats plus
// the Fig. 5 gap histograms, exported live through the obs registry, and
// cycle-level trace emission hooks. All instrument handles are nil when
// Config.Obs is unset; every obs method is nil-safe, so the
// uninstrumented hot path pays only predictable nil checks.

import (
	"smores/internal/obs"
)

// ctrlMetrics holds the controller's resolved instrument handles.
type ctrlMetrics struct {
	readsServed    *obs.Counter
	writesServed   *obs.Counter
	readLatency    *obs.Counter // sum of read latencies, clocks
	sparseReads    *obs.Counter
	sparseWrites   *obs.Counter
	mismatches     *obs.Counter
	conflicts      *obs.Counter
	replays        *obs.Counter
	replayClocks   *obs.Counter
	replayFailures *obs.Counter
	degradedBursts *obs.Counter
	clock          *obs.Gauge
	maxGap         *obs.Gauge
	readQ, writeQ  *obs.Gauge
	readGaps       *obs.Histogram
	writeGaps      *obs.Histogram
}

// newCtrlMetrics resolves every handle once against the registry; the
// tick path never takes a lock afterwards.
func newCtrlMetrics(reg *obs.Registry, labels []obs.Label, gapBuckets int) ctrlMetrics {
	if reg == nil {
		return ctrlMetrics{}
	}
	dir := func(d string) []obs.Label {
		return append(append([]obs.Label(nil), labels...), obs.L("dir", d))
	}
	gapBounds := obs.LinearBounds(0, 1, gapBuckets)
	return ctrlMetrics{
		readsServed: reg.Counter("smores_ctrl_reads_served_total",
			"Read requests completed (data decoded at the GPU).", labels...),
		writesServed: reg.Counter("smores_ctrl_writes_served_total",
			"Write requests committed to the device.", labels...),
		readLatency: reg.Counter("smores_ctrl_read_latency_clocks_total",
			"Sum of read latencies (arrive to decode), command clocks.", labels...),
		sparseReads: reg.Counter("smores_ctrl_sparse_transfers_total",
			"Transfers that committed to a sparse encoding, by direction.",
			dir("read")...),
		sparseWrites: reg.Counter("smores_ctrl_sparse_transfers_total",
			"Transfers that committed to a sparse encoding, by direction.",
			dir("write")...),
		mismatches: reg.Counter("smores_ctrl_decision_mismatches_total",
			"DRAM/GPU codec decision disagreements (invariant: 0).", labels...),
		conflicts: reg.Counter("smores_ctrl_bus_conflicts_total",
			"Data-slot overlaps on the bus (invariant: 0).", labels...),
		replays: reg.Counter("smores_ctrl_replays_total",
			"EDC-triggered burst retransmissions.", labels...),
		replayClocks: reg.Counter("smores_ctrl_replay_clocks_total",
			"Command clocks consumed by replay traffic (backoff + re-sent slots).", labels...),
		replayFailures: reg.Counter("smores_ctrl_replay_failures_total",
			"Bursts still error-detected after the replay retry budget.", labels...),
		degradedBursts: reg.Counter("smores_ctrl_degraded_bursts_total",
			"Bursts forced to MTA by graceful degradation.", labels...),
		clock: reg.Gauge("smores_ctrl_clock",
			"Current controller command clock.", labels...),
		maxGap: reg.Gauge("smores_ctrl_max_gap_clocks",
			"Largest idle span observed between transfers.", labels...),
		readQ: reg.Gauge("smores_ctrl_queue_depth",
			"Current request queue depth, by direction.", dir("read")...),
		writeQ: reg.Gauge("smores_ctrl_queue_depth",
			"Current request queue depth, by direction.", dir("write")...),
		readGaps: reg.Histogram("smores_ctrl_gap_clocks",
			"Idle data-bus clocks between same-direction transfers (Fig. 5).",
			gapBounds, dir("read")...),
		writeGaps: reg.Histogram("smores_ctrl_gap_clocks",
			"Idle data-bus clocks between same-direction transfers (Fig. 5).",
			gapBounds, dir("write")...),
	}
}
