package memctrl

import (
	"fmt"
	"strconv"

	"smores/internal/bus"
	"smores/internal/core"
	"smores/internal/gddr6x"
	"smores/internal/obs"
)

// EncodingPolicy selects how transfers are encoded.
type EncodingPolicy uint8

const (
	// BaselineMTA always uses the dense MTA encoding with the standard L1
	// postamble before idle — today's GDDR6X (Fig. 8a's denominator).
	BaselineMTA EncodingPolicy = iota
	// OptimizedMTA is the paper's hypothetical Fig. 8b baseline: MTA with
	// a level-shifting idle transition instead of the driven postamble,
	// i.e. no postamble energy.
	OptimizedMTA
	// SMOREs applies the sparse encodings per the configured Scheme.
	SMOREs
)

// String names the policy.
func (p EncodingPolicy) String() string {
	switch p {
	case BaselineMTA:
		return "baseline-mta"
	case OptimizedMTA:
		return "optimized-mta"
	case SMOREs:
		return "smores"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// PagePolicy selects row-buffer management.
type PagePolicy uint8

const (
	// OpenPage keeps rows open until a conflict or refresh (the GPU
	// default; maximizes row hits).
	OpenPage PagePolicy = iota
	// ClosedPage precharges a bank as soon as no queued request targets
	// its open row — a scheduler ablation: more activates, more
	// one-clock gaps, more SMOREs opportunity at higher baseline cost.
	ClosedPage
)

// String names the policy.
func (p PagePolicy) String() string {
	switch p {
	case OpenPage:
		return "open-page"
	case ClosedPage:
		return "closed-page"
	default:
		return fmt.Sprintf("pagepolicy(%d)", uint8(p))
	}
}

// RefreshPolicy selects the refresh mechanism.
type RefreshPolicy uint8

const (
	// AllBank issues REFab: the whole device blocks for tRFC, creating
	// long data-bus gaps every tREFI.
	AllBank RefreshPolicy = iota
	// PerBank issues round-robin REFpb: only one bank blocks for the
	// shorter tRFCpb while the rest keep serving — fewer long gaps.
	PerBank
)

// String names the policy.
func (p RefreshPolicy) String() string {
	switch p {
	case AllBank:
		return "refab"
	case PerBank:
		return "refpb"
	default:
		return fmt.Sprintf("refresh(%d)", uint8(p))
	}
}

// Config assembles a controller.
type Config struct {
	// Timing is the device timing; zero value selects DefaultTiming.
	Timing gddr6x.Timing
	// Bus configures the energy-accounting channel model.
	Bus bus.Config
	// Policy selects baseline vs SMOREs encoding.
	Policy EncodingPolicy
	// Scheme is the SMOREs design point (used when Policy == SMOREs).
	Scheme core.Scheme
	// Pages selects the row-buffer policy (default OpenPage).
	Pages PagePolicy
	// Refresh selects all-bank vs per-bank refresh (default AllBank).
	Refresh RefreshPolicy

	// ReadQueueCap and WriteQueueCap bound the request queues.
	ReadQueueCap  int
	WriteQueueCap int
	// WriteHi enters write-drain mode; WriteLo leaves it.
	WriteHi int
	WriteLo int

	// ExtraCodecLatency adds pipeline clocks to every data command's
	// latency — the paper's §V-A ablation where the alternate encoder
	// costs an extra cycle.
	ExtraCodecLatency int64

	// GapHistBuckets sizes the idle-gap histograms (Fig. 5 uses 0..16
	// plus a ">16" tail). Zero selects 17.
	GapHistBuckets int

	// Fault installs a link-reliability hook on the owned channel (see
	// bus.BurstHook); it enables the EDC replay machinery below. Requires
	// Bus.ExactData — the hook needs real symbols to corrupt. Nil keeps
	// the link ideal and the replay path compiled out to nil checks.
	Fault bus.BurstHook
	// Replay tunes the EDC-triggered retransmission machinery; only
	// consulted when Fault is installed. Zero value selects defaults.
	Replay ReplayConfig

	// NoEventSkip forces Drain (and any caller honouring it, e.g. the GPU
	// driver) back onto the legacy one-clock-at-a-time tick loop instead of
	// next-event skipping. The two loops are bit-identical by construction
	// and by the differential test in the report package; the flag exists
	// for that A/B test and for debugging.
	NoEventSkip bool

	// Obs registers the controller's, device's, and channel's live
	// counters into the given registry. Nil disables telemetry; the hot
	// path then pays only predictable nil checks.
	Obs *obs.Registry
	// ObsLabels scope every metric series this controller produces
	// (e.g. channel="0"). A channel label derived from Channel is added
	// automatically when none is supplied.
	ObsLabels []obs.Label
	// Tracer records cycle-level command/bus/codec events into a ring
	// buffer for Chrome-trace export. Nil disables tracing entirely.
	Tracer *obs.Tracer
	// Channel identifies this controller in trace output and default
	// metric labels (multi-channel runs use 0..N-1).
	Channel int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Timing == (gddr6x.Timing{}) {
		c.Timing = gddr6x.DefaultTiming()
	}
	if c.ReadQueueCap == 0 {
		c.ReadQueueCap = 32
	}
	if c.WriteQueueCap == 0 {
		c.WriteQueueCap = 32
	}
	if c.WriteHi == 0 {
		c.WriteHi = 3 * c.WriteQueueCap / 4
	}
	if c.WriteLo == 0 {
		c.WriteLo = c.WriteQueueCap / 4
	}
	if c.GapHistBuckets == 0 {
		c.GapHistBuckets = 17
	}
	if c.Obs != nil && len(c.ObsLabels) == 0 {
		c.ObsLabels = []obs.Label{obs.L("channel", strconv.Itoa(c.Channel))}
	}
	// Exhaustive gap detection relies on WRITE commands being staged early
	// in the DRAM (§V-A) so a stretched read response never collides with
	// write data. The controller models the effect through its data-bus
	// reservation: once a read commits to a sparse length, a write's
	// column command is simply held until the stretched slot clears —
	// write data is buffered, so this costs at most a few clocks.
	return c
}

// validate rejects structurally bad configurations.
func (c Config) validate() error {
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if c.ReadQueueCap < 1 || c.WriteQueueCap < 1 {
		return fmt.Errorf("memctrl: queue capacities must be positive")
	}
	if c.WriteLo >= c.WriteHi || c.WriteHi > c.WriteQueueCap {
		return fmt.Errorf("memctrl: write watermarks lo=%d hi=%d cap=%d inconsistent",
			c.WriteLo, c.WriteHi, c.WriteQueueCap)
	}
	if c.ExtraCodecLatency < 0 {
		return fmt.Errorf("memctrl: negative codec latency")
	}
	if c.Fault != nil {
		if !c.Bus.ExactData {
			return fmt.Errorf("memctrl: fault hook requires exact-data mode")
		}
		if err := c.Replay.withDefaults().validate(); err != nil {
			return err
		}
	}
	return nil
}
