// Package memctrl implements a GPU-style GDDR6X memory controller for one
// channel: FR-FCFS scheduling with activate priority, write-buffer
// draining with bus turnaround, refresh management, and — the part the
// paper adds — the opportunistic SMOREs encoding decision driven by
// command-gap detection, mirrored on both the DRAM and GPU side.
package memctrl

import (
	"fmt"

	"smores/internal/gddr6x"
)

// Kind distinguishes reads from writes.
type Kind uint8

// Request kinds.
const (
	Read Kind = iota
	Write
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Request is one 32-byte sector transfer requested of the controller.
type Request struct {
	// ID is a caller-chosen identifier, echoed on completion.
	ID uint64
	// Kind selects read or write.
	Kind Kind
	// Sector is the linear 32-byte sector index within the channel.
	Sector uint64
	// Arrive is the clock at which the request entered the controller.
	Arrive int64

	// Fields filled by the controller:

	// Addr is the decomposed DRAM coordinate.
	Addr gddr6x.Address
	// IssuedAt is the clock of the column command.
	IssuedAt int64
	// DataStart is the clock at which the data slot begins.
	DataStart int64
	// CodeLength is the encoding used (0 = MTA).
	CodeLength int
	// Replayed counts EDC-triggered retransmissions this request's burst
	// needed (0 when the link-reliability hook is off or the burst was
	// clean).
	Replayed int
	// Done is the clock at which read data has fully arrived and decoded
	// (reads only).
	Done int64
}
