package memctrl

import (
	"math"
	"testing"

	"smores/internal/bus"
	"smores/internal/core"
	"smores/internal/rng"
)

// TestExactDataEndToEnd runs whole simulations with real symbol streams
// on the wires (random payloads standing in for encrypted data) under
// every policy, asserting the physical invariant — no 3ΔV transition
// ever appears across any mix of MTA bursts, sparse bursts, postambles,
// seams and idle periods produced by real scheduling — and that the
// expected-energy fast path agrees with exact accounting.
func TestExactDataEndToEnd(t *testing.T) {
	schemes := []Config{
		{Policy: BaselineMTA},
		{Policy: OptimizedMTA},
		{Policy: SMOREs, Scheme: core.Scheme{Specification: core.StaticCode, Detection: core.Exhaustive}},
		{Policy: SMOREs, Scheme: core.Scheme{Specification: core.VariableCode, Detection: core.Exhaustive}},
		{Policy: SMOREs, Scheme: core.Scheme{Specification: core.StaticCode, Detection: core.Conservative}},
	}
	for si, base := range schemes {
		run := func(exact bool) *Controller {
			cfg := base
			cfg.Bus = bus.Config{ExactData: exact}
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(uint64(42 + si))
			var arrivals []arrival
			at := int64(0)
			for i := 0; i < 1200; i++ {
				at += int64(r.Intn(10))
				kind := Read
				if r.Bool(0.3) {
					kind = Write
				}
				arrivals = append(arrivals, arrival{at: at, req: &Request{
					ID: uint64(i), Kind: kind, Sector: uint64(r.Intn(1 << 20)),
				}})
			}
			feed(t, c, arrivals)
			return c
		}
		exact := run(true)
		expected := run(false)

		st := exact.BusStats()
		if st.Violations != 0 {
			t.Errorf("scheme %d: %d max-transition violations on real streams", si, st.Violations)
		}
		if st.DataBits == 0 {
			t.Fatalf("scheme %d: no data moved", si)
		}
		ePer, xPer := expected.BusStats().PerBit(), st.PerBit()
		if math.Abs(ePer-xPer)/ePer > 0.01 {
			t.Errorf("scheme %d: exact %.1f vs expected %.1f fJ/bit (>1%% apart)", si, xPer, ePer)
		}
		if exact.Stats().DecisionMismatches != 0 || exact.Stats().BusConflicts != 0 {
			t.Errorf("scheme %d: invariants violated: %+v", si, exact.Stats())
		}
	}
}
