package memctrl

import (
	"testing"

	"smores/internal/gddr6x"
)

// TestPerBankRefreshCompletes runs a long workload under REFpb and checks
// that refreshes happen round-robin without deadlock.
func TestPerBankRefreshCompletes(t *testing.T) {
	c := newCtrl(t, Config{Policy: BaselineMTA, Refresh: PerBank})
	done := 0
	c.OnReadDone(func(*Request) { done++ })
	feed(t, c, seqReads(400, 0, 40))
	if done != 400 {
		t.Fatalf("completed %d/400 under per-bank refresh", done)
	}
	_, _, _, _, refs := devCounters(c)
	if refs == 0 {
		t.Fatal("no per-bank refreshes issued")
	}
	// Per-bank refreshes run Banks× as often as REFab over the same span.
	ab := newCtrl(t, Config{Policy: BaselineMTA, Refresh: AllBank})
	feed(t, ab, seqReads(400, 0, 40))
	_, _, _, _, refsAB := devCounters(ab)
	if refsAB == 0 {
		t.Fatal("no all-bank refreshes issued")
	}
	banks := gddr6x.DefaultTiming().Banks
	lo, hi := int64(banks)*refsAB/2, int64(banks)*refsAB*2
	if refs < lo || refs > hi {
		t.Errorf("REFpb count %d not ≈ %d× REFab count %d", refs, banks, refsAB)
	}
	if c.Stats().BusConflicts != 0 || c.Stats().DecisionMismatches != 0 {
		t.Errorf("invariants violated: %+v", c.Stats())
	}
}

// TestPerBankRefreshShrinksWorstGap: REFab blocks the whole channel for
// tRFC (160 clocks), so its worst observed gap is refresh-sized; REFpb
// only shadows one bank for tRFCpb, so the worst gap collapses. (For a
// single sequential stream REFpb stalls *more often* — 16× the rate —
// which is a genuine trade-off this simulator reproduces; the win is in
// the worst case, not necessarily the tail frequency.)
func TestPerBankRefreshShrinksWorstGap(t *testing.T) {
	run := func(pol RefreshPolicy) Stats {
		c := newCtrl(t, Config{Policy: BaselineMTA, Refresh: pol})
		// A paced stream long enough to cross many tREFI periods.
		feed(t, c, seqReads(3000, 0, 6))
		return c.Stats()
	}
	cfg := gddr6x.DefaultTiming()
	ab := run(AllBank)
	pb := run(PerBank)
	t.Logf("worst gap: REFab %d clocks vs REFpb %d clocks (tRFC=%d, tRFCpb=%d)",
		ab.MaxGapClocks, pb.MaxGapClocks, cfg.TRFC, cfg.TRFCPB)
	if ab.MaxGapClocks < cfg.TRFC {
		t.Errorf("REFab worst gap %d below tRFC %d — refresh shadow missing", ab.MaxGapClocks, cfg.TRFC)
	}
	if pb.MaxGapClocks >= cfg.TRFC {
		t.Errorf("REFpb worst gap %d still refresh-sized (tRFC %d)", pb.MaxGapClocks, cfg.TRFC)
	}
}

func TestRefreshPolicyNames(t *testing.T) {
	if AllBank.String() != "refab" || PerBank.String() != "refpb" {
		t.Error("refresh policy names wrong")
	}
	if RefreshPolicy(9).String() == "" {
		t.Error("unknown refresh policy must render")
	}
	if OpenPage.String() != "open-page" || ClosedPage.String() != "closed-page" {
		t.Error("page policy names wrong")
	}
	if PagePolicy(9).String() == "" {
		t.Error("unknown page policy must render")
	}
}

// TestPerBankRefreshDeviceOrder checks the device-level round-robin rule.
func TestPerBankRefreshDeviceOrder(t *testing.T) {
	d, err := gddr6x.NewDevice(gddr6x.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	cfg := d.Timing()
	due := cfg.TREFI / int64(cfg.Banks)
	if d.PerBankRefreshDue(due - 1) {
		t.Error("REFpb due early")
	}
	if !d.PerBankRefreshDue(due) {
		t.Error("REFpb not due")
	}
	if d.NextRefreshBank() != 0 {
		t.Errorf("first refresh bank = %d", d.NextRefreshBank())
	}
	if err := d.RefreshBank(1, due); err == nil {
		t.Error("out-of-order REFpb must error")
	}
	if err := d.RefreshBank(0, due); err != nil {
		t.Fatal(err)
	}
	if d.NextRefreshBank() != 1 {
		t.Error("round-robin did not advance")
	}
	// Bank 0 blocked for tRFCpb, others free.
	if d.CanActivate(0, due+cfg.TRFCPB-1) {
		t.Error("refreshed bank usable too early")
	}
	if !d.CanActivate(1, due+1) {
		t.Error("other banks should stay usable during REFpb")
	}
	// Refreshing an open bank is illegal.
	if err := d.Activate(1, 5, due+2); err != nil {
		t.Fatal(err)
	}
	if d.CanRefreshBank(1, due+3) {
		t.Error("REFpb legal on an open bank")
	}
}
