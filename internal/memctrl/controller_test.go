package memctrl

import (
	"testing"

	"smores/internal/core"
	"smores/internal/gddr6x"
	"smores/internal/rng"
)

// feed runs the controller, enqueuing each (clock, request) pair at its
// time, then drains.
type arrival struct {
	at  int64
	req *Request
}

func feed(t *testing.T, c *Controller, arrivals []arrival) {
	t.Helper()
	i := 0
	for i < len(arrivals) {
		for i < len(arrivals) && arrivals[i].at <= c.Clock() {
			if !c.Enqueue(arrivals[i].req) {
				break // queue full: retry next tick
			}
			i++
		}
		c.Tick()
		if c.Clock() > 1<<22 {
			t.Fatal("controller livelocked")
		}
	}
	if !c.Drain(1 << 20) {
		t.Fatal("drain timed out")
	}
	c.Finish()
}

func seqReads(n int, startSector uint64, spacing int64) []arrival {
	out := make([]arrival, n)
	for i := range out {
		out[i] = arrival{
			at:  int64(i) * spacing,
			req: &Request{ID: uint64(i), Kind: Read, Sector: startSector + uint64(i)},
		}
	}
	return out
}

func newCtrl(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{WriteHi: 2, WriteLo: 5}); err == nil {
		t.Error("inverted watermarks must fail")
	}
	if _, err := New(Config{ExtraCodecLatency: -1}); err == nil {
		t.Error("negative latency must fail")
	}
	bad := gddr6x.DefaultTiming()
	bad.RL = 0
	if _, err := New(Config{Timing: bad}); err == nil {
		t.Error("bad timing must fail")
	}
}

func TestBackToBackReadsHaveNoGaps(t *testing.T) {
	c := newCtrl(t, Config{Policy: BaselineMTA})
	done := 0
	c.OnReadDone(func(r *Request) {
		done++
		if r.CodeLength != 0 {
			t.Errorf("baseline produced code length %d", r.CodeLength)
		}
	})
	// A saturating stream: all requests available at time 0, sequential
	// sectors (row hits after the first activate).
	feed(t, c, seqReads(64, 0, 0))
	if done != 64 {
		t.Fatalf("completed %d/64 reads", done)
	}
	h := c.ReadGapHistogram()
	if h.Total() == 0 {
		t.Fatal("no gaps recorded")
	}
	// Back-to-back dominates; the residue is the one-clock slip from
	// two-clock ACTIVATEs and same-bank-group tCCD_L spacing.
	if f := h.Fraction(0); f < 0.75 {
		t.Errorf("saturating stream gap-0 fraction = %.2f, want ≥0.75 (%v)", f, h)
	}
	if tail := h.TailFraction(2); tail > 0.1 {
		t.Errorf("saturating stream tail ≥2 = %.2f, want ≤0.1 (%v)", tail, h)
	}
	if c.Stats().BusConflicts != 0 || c.Stats().DecisionMismatches != 0 {
		t.Errorf("invariant violations: %+v", c.Stats())
	}
}

func TestIsolatedReadLatency(t *testing.T) {
	c := newCtrl(t, Config{Policy: BaselineMTA})
	var got *Request
	c.OnReadDone(func(r *Request) { got = r })
	feed(t, c, seqReads(1, 0, 0))
	if got == nil {
		t.Fatal("read never completed")
	}
	cfg := gddr6x.DefaultTiming()
	// ACT at 0, RD at tRCD, data [tRCD+RL, +2), done at tRCD+RL+2.
	want := cfg.TRCD + cfg.RL + 2
	if got.Done != want {
		t.Errorf("isolated read done at %d, want %d", got.Done, want)
	}
}

func TestStaticSchemeUsesSparseOnGaps(t *testing.T) {
	c := newCtrl(t, Config{
		Policy: SMOREs,
		Scheme: core.Scheme{Specification: core.StaticCode, Detection: core.Exhaustive},
	})
	codeLens := map[int]int{}
	c.OnReadDone(func(r *Request) { codeLens[r.CodeLength]++ })
	// Requests spaced 3 clocks apart: in steady state each pair leaves a
	// one-clock gap (the startup tRCD stall briefly builds a back-to-back
	// backlog).
	feed(t, c, seqReads(300, 0, 3))
	if codeLens[3] == 0 {
		t.Fatalf("no sparse reads on gapped traffic: %v", codeLens)
	}
	if c.Stats().SparseReads == 0 {
		t.Error("sparse read counter not advanced")
	}
	if c.Stats().DecisionMismatches != 0 {
		t.Error("DRAM and GPU decisions diverged")
	}
	// Gaps of exactly 1 should dominate the histogram.
	h := c.ReadGapHistogram()
	if h.Fraction(1) < 0.5 {
		t.Errorf("gap-1 fraction = %.2f, want ≥0.5 (%v)", h.Fraction(1), h)
	}
	if h.Fraction(1) < h.TailFraction(2) {
		t.Errorf("gap-1 (%.2f) should dominate larger gaps (%.2f)", h.Fraction(1), h.TailFraction(2))
	}
}

func TestVariableSchemeSizesCodeToGap(t *testing.T) {
	c := newCtrl(t, Config{
		Policy: SMOREs,
		Scheme: core.Scheme{Specification: core.VariableCode, Detection: core.Exhaustive},
	})
	codeLens := map[int]int{}
	c.OnReadDone(func(r *Request) { codeLens[r.CodeLength]++ })
	// Stride the sectors across alternating bank groups (two chunks
	// apart) so rows stay open and tCCD_S applies: command spacing 6 then
	// yields a steady 4-clock gap → 4b6s.
	arrivals := make([]arrival, 60)
	chunk := int64(gddr6x.DefaultTiming().ChunkSectors)
	for i := range arrivals {
		arrivals[i] = arrival{
			at:  int64(i) * 6,
			req: &Request{ID: uint64(i), Kind: Read, Sector: uint64(int64(i) * 2 * chunk)},
		}
	}
	feed(t, c, arrivals)
	if codeLens[6] < 30 {
		t.Fatalf("expected mostly 4b6s codes, got %v", codeLens)
	}
}

func TestVariableSchemeCapsAtEight(t *testing.T) {
	c := newCtrl(t, Config{
		Policy: SMOREs,
		Scheme: core.Scheme{Specification: core.VariableCode, Detection: core.Exhaustive},
	})
	codeLens := map[int]int{}
	c.OnReadDone(func(r *Request) { codeLens[r.CodeLength]++ })
	feed(t, c, seqReads(20, 0, 60)) // giant gaps
	if codeLens[8] == 0 {
		t.Fatalf("expected capped 4b8s codes, got %v", codeLens)
	}
	for l := range codeLens {
		if l != 0 && (l < 3 || l > 8) {
			t.Errorf("illegal code length %d", l)
		}
	}
}

func TestConservativeFallsBackOnLongGaps(t *testing.T) {
	c := newCtrl(t, Config{
		Policy: SMOREs,
		Scheme: core.Scheme{Specification: core.StaticCode, Detection: core.Conservative},
	})
	codeLens := map[int]int{}
	c.OnReadDone(func(r *Request) { codeLens[r.CodeLength]++ })
	feed(t, c, seqReads(20, 0, 60)) // gaps beyond the 8-clock window
	if codeLens[0] == 0 {
		t.Fatalf("conservative scheme should fall back to MTA: %v", codeLens)
	}
	if codeLens[3] != 0 {
		t.Errorf("conservative scheme used sparse beyond its window: %v", codeLens)
	}
	// Short gaps inside the window still use sparse.
	c2 := newCtrl(t, Config{
		Policy: SMOREs,
		Scheme: core.Scheme{Specification: core.StaticCode, Detection: core.Conservative},
	})
	lens2 := map[int]int{}
	c2.OnReadDone(func(r *Request) { lens2[r.CodeLength]++ })
	feed(t, c2, seqReads(40, 0, 3))
	if lens2[3] == 0 {
		t.Errorf("conservative scheme should use sparse inside the window: %v", lens2)
	}
}

func TestSparseSavesEnergyOnGappedTraffic(t *testing.T) {
	run := func(policy EncodingPolicy, scheme core.Scheme) float64 {
		c := newCtrl(t, Config{Policy: policy, Scheme: scheme})
		feed(t, c, seqReads(200, 0, 3))
		return c.BusStats().PerBit()
	}
	base := run(BaselineMTA, core.Scheme{})
	smores := run(SMOREs, core.Scheme{Specification: core.StaticCode, Detection: core.Exhaustive})
	opt := run(OptimizedMTA, core.Scheme{})
	if smores >= base {
		t.Errorf("SMOREs (%.1f) not cheaper than baseline (%.1f)", smores, base)
	}
	if opt >= base {
		t.Errorf("optimized MTA (%.1f) should drop postamble energy vs %.1f", opt, base)
	}
	saving := 1 - smores/base
	t.Logf("static SMOREs saving on all-gap-1 read stream: %.1f%%", saving*100)
	if saving < 0.15 {
		t.Errorf("saving %.1f%% implausibly low for pure gap-1 traffic", saving*100)
	}
}

func TestWriteDrainAndTurnaround(t *testing.T) {
	c := newCtrl(t, Config{Policy: BaselineMTA, WriteQueueCap: 16, WriteHi: 8, WriteLo: 2})
	var arrivals []arrival
	// Interleaved reads and writes to force mode switches.
	for i := 0; i < 60; i++ {
		kind := Read
		if i%3 == 0 {
			kind = Write
		}
		arrivals = append(arrivals, arrival{at: int64(i) * 2, req: &Request{ID: uint64(i), Kind: kind, Sector: uint64(i * 7)}})
	}
	done := 0
	c.OnReadDone(func(*Request) { done++ })
	feed(t, c, arrivals)
	st := c.Stats()
	if st.WritesServed != 20 {
		t.Errorf("writes served = %d, want 20", st.WritesServed)
	}
	if done != 40 {
		t.Errorf("reads completed = %d, want 40", done)
	}
	if st.BusConflicts != 0 {
		t.Errorf("bus conflicts: %d", st.BusConflicts)
	}
	if c.WriteGapHistogram().Total() == 0 {
		t.Error("no write gaps recorded")
	}
}

func TestRefreshDoesNotDeadlock(t *testing.T) {
	c := newCtrl(t, Config{Policy: BaselineMTA})
	// Enough spaced requests to cross several tREFI periods.
	arrivals := seqReads(400, 0, 40)
	done := 0
	c.OnReadDone(func(*Request) { done++ })
	feed(t, c, arrivals)
	if done != 400 {
		t.Fatalf("completed %d/400 across refresh windows", done)
	}
	_, _, _, _, refs := devCounters(c)
	if refs == 0 {
		t.Error("no refreshes issued over a long run")
	}
}

func devCounters(c *Controller) (int64, int64, int64, int64, int64) {
	return c.dev.Counters()
}

// TestRandomTrafficInvariants fuzzes the controller across schemes and
// checks the structural invariants: every request completes, no bus
// conflicts, no DRAM/GPU decision mismatches, no queue leaks.
func TestRandomTrafficInvariants(t *testing.T) {
	schemes := []Config{
		{Policy: BaselineMTA},
		{Policy: OptimizedMTA},
		{Policy: SMOREs, Scheme: core.Scheme{Specification: core.StaticCode, Detection: core.Exhaustive}},
		{Policy: SMOREs, Scheme: core.Scheme{Specification: core.VariableCode, Detection: core.Exhaustive}},
		{Policy: SMOREs, Scheme: core.Scheme{Specification: core.StaticCode, Detection: core.Conservative}},
	}
	for si, cfg := range schemes {
		r := rng.New(uint64(1000 + si))
		var arrivals []arrival
		at := int64(0)
		reads := 0
		for i := 0; i < 600; i++ {
			at += int64(r.Intn(12))
			kind := Read
			if r.Bool(0.25) {
				kind = Write
			} else {
				reads++
			}
			arrivals = append(arrivals, arrival{at: at, req: &Request{
				ID: uint64(i), Kind: kind, Sector: uint64(r.Intn(1 << 18)),
			}})
		}
		c := newCtrl(t, cfg)
		done := 0
		c.OnReadDone(func(rq *Request) {
			done++
			if rq.Done < rq.DataStart {
				t.Errorf("scheme %d: completion before data start", si)
			}
		})
		feed(t, c, arrivals)
		st := c.Stats()
		if done != reads {
			t.Errorf("scheme %d: %d/%d reads completed", si, done, reads)
		}
		if st.WritesServed != int64(len(arrivals)-reads) {
			t.Errorf("scheme %d: writes served %d/%d", si, st.WritesServed, len(arrivals)-reads)
		}
		if st.BusConflicts != 0 {
			t.Errorf("scheme %d: %d bus conflicts", si, st.BusConflicts)
		}
		if st.DecisionMismatches != 0 {
			t.Errorf("scheme %d: %d decision mismatches", si, st.DecisionMismatches)
		}
		if r, w := c.QueueLens(); r != 0 || w != 0 {
			t.Errorf("scheme %d: queues leaked %d/%d", si, r, w)
		}
	}
}

func TestExtraCodecLatencyAblation(t *testing.T) {
	base := newCtrl(t, Config{Policy: BaselineMTA})
	slow := newCtrl(t, Config{Policy: BaselineMTA, ExtraCodecLatency: 1})
	feed(t, base, seqReads(50, 0, 4))
	feed(t, slow, seqReads(50, 0, 4))
	if slow.AverageReadLatency() <= base.AverageReadLatency() {
		t.Errorf("extra codec cycle did not increase latency: %.2f vs %.2f",
			slow.AverageReadLatency(), base.AverageReadLatency())
	}
	// Regression: the data-bus reservation check must account for the
	// extra pipeline latency, or every back-to-back pair slips a clock
	// and the one-cycle ablation masquerades as a ~16% throughput loss.
	if d := slow.AverageReadLatency() - base.AverageReadLatency(); d > 3 {
		t.Errorf("one extra codec cycle added %.2f clocks of latency; reservation is misaligned", d)
	}
	if base.ReadGapHistogram().Fraction(0) > 0 && slow.ReadGapHistogram().Fraction(0) == 0 {
		t.Error("extra codec cycle eliminated all back-to-back transfers")
	}
}

func TestEnqueueBackpressure(t *testing.T) {
	c := newCtrl(t, Config{Policy: BaselineMTA, ReadQueueCap: 2, WriteQueueCap: 2, WriteHi: 2, WriteLo: 1})
	if !c.Enqueue(&Request{Kind: Read, Sector: 0}) || !c.Enqueue(&Request{Kind: Read, Sector: 1}) {
		t.Fatal("enqueue failed below capacity")
	}
	if c.Enqueue(&Request{Kind: Read, Sector: 2}) {
		t.Error("enqueue succeeded beyond capacity")
	}
	if !c.Enqueue(&Request{Kind: Write, Sector: 3}) {
		t.Error("write enqueue failed")
	}
	if desc := c.Describe(); desc != "baseline-mta" {
		t.Errorf("Describe = %q", desc)
	}
}

func TestDescribeSMOREs(t *testing.T) {
	c := newCtrl(t, Config{Policy: SMOREs, Scheme: core.Scheme{Specification: core.VariableCode, Detection: core.Exhaustive}})
	if got := c.Describe(); got != "smores(exhaustive/variable)" {
		t.Errorf("Describe = %q", got)
	}
	if EncodingPolicy(9).String() == "" || BaselineMTA.String() != "baseline-mta" {
		t.Error("policy names wrong")
	}
}
