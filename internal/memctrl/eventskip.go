package memctrl

// Next-event skipping: between commands the controller/device state is
// static, so Tick is inert (clock advance plus idempotent gauge writes)
// until the earliest of: a read completion delivering, the pending
// encoding decision reaching its deadline, an all-bank refresh shadow
// ending, a refresh becoming due, or a queued request's column/ACT/PRE
// timing expiring. NextEventClock computes a conservative lower bound on
// that clock and SkipTo advances straight to it.
//
// Conservatism is the safety argument: waking too early just runs an
// inert Tick and re-arms (the per-clock loop is the degenerate case);
// waking too late would diverge, so every bound below is the exact
// ready-clock of the device's Can* predicates or earlier. Bit-identity
// with the legacy loop is enforced by TestEventSkipBitIdentical in the
// report package across all five evaluation policies.

const farFuture = int64(1) << 62

// NextEventClock returns the earliest clock, at or after the current one,
// at which Tick could do more than advance the clock. A return equal to
// Clock() means "possibly actionable right now — do not skip".
func (c *Controller) NextEventClock() int64 {
	now := c.clock
	next := farFuture
	if len(c.completions) > 0 {
		next = c.completions[0].Done
	}
	if c.hasPending && !c.pending.decided {
		// Deadline fires at the first clock where clock-cmdAt > deadline.
		if t := c.pending.cmdAt + c.decisionDeadline() + 1; t < next {
			next = t
		}
	}

	// Inside an all-bank refresh shadow Tick returns before any issue
	// logic: only completions, the decision deadline, and the shadow's end
	// need attention.
	if busy := c.dev.BusyUntil(); now < busy {
		if busy < next {
			next = busy
		}
		return clampNow(next, now)
	}

	if c.cfg.Refresh == PerBank {
		if due := c.dev.PerBankRefreshDueAt(); now >= due {
			// REFpb owed: the controller precharges/refreshes the target
			// bank as soon as the device allows, every tick until it lands.
			b := c.dev.NextRefreshBank()
			var t int64
			if _, open := c.dev.OpenRow(b); open {
				t = c.dev.PrechargeReadyAt(b)
			} else {
				t = c.dev.RefreshBankReadyAt(b)
			}
			if t >= 0 && t < next {
				next = t
			}
		} else if due < next {
			next = due
		}
		// Other banks keep serving: fall through to the issue events.
	} else {
		if c.refreshing || now >= c.dev.RefreshDueAt() {
			// Refresh drain: column/prep issue is suppressed until REFab
			// lands, so the only events are the refresh itself or the
			// precharges clearing the way for it.
			if t := c.dev.RefreshReadyAt(); t >= 0 {
				if t < next {
					next = t
				}
			} else {
				for b := 0; b < c.cfg.Timing.Banks; b++ {
					if t := c.dev.PrechargeReadyAt(b); t >= 0 && t < next {
						next = t
					}
				}
			}
			return clampNow(next, now)
		}
		if due := c.dev.RefreshDueAt(); due < next {
			next = due
		}
	}

	if len(c.readQ)+len(c.writeQ) > 0 {
		// Streaming bail-out: if a column command landed within the last
		// tCCD_L clocks, the next issue slot is at most that far away and
		// the per-request scan below would cost more than the skip saves.
		// Returning "now" is always safe (the tick just runs normally).
		if c.dev.LastColumnAt()+c.cfg.Timing.TCCDL > now {
			return now
		}
	}
	if t := c.nextIssueReady(); t >= 0 {
		// Column and prep commands share the command bus; nothing issues
		// before a two-clock ACTIVATE releases it.
		if t < c.cmdBusyTill {
			t = c.cmdBusyTill
		}
		if t < next {
			next = t
		}
	}
	return clampNow(next, now)
}

func clampNow(next, now int64) int64 {
	if next < now {
		return now
	}
	return next
}

// nextIssueReady returns the earliest clock at which any queued request
// could receive a command (column, precharge, or activate) — or, under
// ClosedPage, an idle precharge could fire. -1 means no issue event can
// occur by time alone (empty queues). The bound is conservative: it
// ignores FR-FCFS ordering, per-bank prep dedup, and the active/inactive
// queue split, all of which can only delay the real issue past the bound.
func (c *Controller) nextIssueReady() int64 {
	next := int64(-1)
	better := func(t int64) {
		if t >= 0 && (next < 0 || t < next) {
			next = t
		}
	}
	for qi, q := range [2]*[]*Request{&c.readQ, &c.writeQ} {
		write := qi == 1
		lat := c.cfg.Timing.RL
		if write {
			lat = c.cfg.Timing.WL
		}
		lat += c.cfg.ExtraCodecLatency
		for _, r := range *q {
			if t := c.dev.ColumnReadyAt(r.Addr, write); t >= 0 {
				// issueColumn holds commands whose data would start inside
				// a booked (stretched) slot.
				if hold := c.busReservedUntil - lat; hold > t {
					t = hold
				}
				better(t)
			} else if c.dev.NeedsPrecharge(r.Addr) {
				better(c.dev.PrechargeReadyAt(r.Addr.Bank))
			} else {
				better(c.dev.ActivateReadyAt(r.Addr.Bank))
			}
		}
	}
	if c.cfg.Pages == ClosedPage {
		for b := 0; b < c.cfg.Timing.Banks; b++ {
			better(c.dev.PrechargeReadyAt(b))
		}
	}
	return next
}

// SkipTo advances the clock to target as if target−Clock() inert Ticks
// had run: the stats clock and gauges read exactly what the last skipped
// tick would have written, and no commands issue. Callers must guarantee
// every clock in [Clock(), target) is inert — NextEventClock provides
// such a bound. Targets at or before the current clock are ignored.
func (c *Controller) SkipTo(target int64) {
	if target <= c.clock {
		return
	}
	c.clock = target
	// Preserve the post-Tick invariant st.Clock == clock-1.
	c.st.Clock = target - 1
	c.m.clock.Set(target - 1)
	c.m.readQ.Set(int64(len(c.readQ)))
	c.m.writeQ.Set(int64(len(c.writeQ)))
}

// ReadQueueFull and WriteQueueFull report request-queue backpressure;
// the GPU driver uses them to recognize stall windows it can skip.
func (c *Controller) ReadQueueFull() bool { return len(c.readQ) >= c.cfg.ReadQueueCap }

// WriteQueueFull reports whether the write queue is at capacity.
func (c *Controller) WriteQueueFull() bool { return len(c.writeQ) >= c.cfg.WriteQueueCap }

// EventSkipEnabled reports whether this controller may be advanced with
// next-event skipping (Config.NoEventSkip unset).
func (c *Controller) EventSkipEnabled() bool { return !c.cfg.NoEventSkip }
