package memctrl

// EDC-triggered replay: when the link-reliability hook (Config.Fault)
// reports a detected error on a burst, the controller retransmits the
// sector — GDDR6's EDC/CRC-8 replay channel, which GDDR6X inherits.
// Each retransmission costs a feedback/backoff delay plus the slot
// clocks of the re-sent burst; the clocks surface as read latency and
// booked bus time, the joules as bus.Stats.ReplayEnergy (profiler phase
// "replay"). When the observed detected-burst rate crosses a threshold,
// the controller degrades gracefully: it stops choosing opportunistic
// sparse codecs (MTA-only) until the rate recovers, trading the sparse
// codes' energy savings for the denser code's shorter exposure — both
// ends of the link observe the same EDC feedback stream, so the
// degradation decision stays mirrored without extra signaling.

import (
	"fmt"

	"smores/internal/core"
)

// ReplayConfig tunes the EDC replay machinery. Only consulted when
// Config.Fault is installed.
type ReplayConfig struct {
	// RetryBudget is the maximum retransmissions per burst before the
	// controller gives up (the error is then recorded as a replay
	// failure and the last received data is delivered). Default 3.
	RetryBudget int
	// BackoffClocks is the base feedback delay in command clocks before
	// the k-th retransmission: the k-th retry waits BackoffClocks<<(k−1)
	// — EDC result round-trip plus exponential backoff. Default 8.
	BackoffClocks int64
	// DegradeThreshold enables graceful degradation: when the fraction
	// of detected bursts over the last DegradeWindow bursts reaches the
	// threshold, SMOREs falls back to MTA-only; it re-enables once the
	// rate drops to half the threshold (hysteresis). Zero disables.
	DegradeThreshold float64
	// DegradeWindow is the burst window for the detected-rate estimate.
	// Default 512.
	DegradeWindow int
}

// withDefaults fills zero fields.
func (r ReplayConfig) withDefaults() ReplayConfig {
	if r.RetryBudget == 0 {
		r.RetryBudget = 3
	}
	if r.BackoffClocks == 0 {
		r.BackoffClocks = 8
	}
	if r.DegradeWindow == 0 {
		r.DegradeWindow = 512
	}
	return r
}

// validate rejects structurally bad replay configurations.
func (r ReplayConfig) validate() error {
	if r.RetryBudget < 0 {
		return fmt.Errorf("memctrl: negative replay retry budget")
	}
	if r.BackoffClocks < 0 {
		return fmt.Errorf("memctrl: negative replay backoff")
	}
	if r.DegradeThreshold < 0 || r.DegradeThreshold > 1 {
		return fmt.Errorf("memctrl: degrade threshold %g outside [0, 1]", r.DegradeThreshold)
	}
	if r.DegradeWindow < 1 {
		return fmt.Errorf("memctrl: degrade window must be positive")
	}
	return nil
}

// Degraded reports whether the controller is currently in the MTA-only
// degradation state.
func (c *Controller) Degraded() bool { return c.degraded }

// runReplay consults the hook's verdict for the burst just sent and, if
// an error was detected, retransmits until clean or the retry budget is
// spent. It returns the total bus clocks the replay traffic consumed
// (backoff + retransmission slots); the caller folds them into the
// transfer's completion time, the bus reservation, and the idle
// accounting. p.codeLen must be committed before the call.
func (c *Controller) runReplay(p *xfer, data []byte) int64 {
	if c.cfg.Fault == nil {
		return 0
	}
	v := c.ch.LastBurstVerdict()
	c.noteBurstOutcome(v.Detected)
	if !v.Detected {
		return 0
	}
	var clocks int64
	for attempt := 1; attempt <= c.replay.RetryBudget; attempt++ {
		clocks += c.replay.BackoffClocks<<uint(attempt-1) + int64(core.SlotClocks(p.codeLen))
		c.st.Replays++
		c.m.replays.Inc()
		if err := c.ch.ReplayBurst(data, p.codeLen); err != nil {
			panic("memctrl: " + err.Error())
		}
		p.req.Replayed++
		if v = c.ch.LastBurstVerdict(); !v.Detected {
			c.m.replayClocks.Add(clocks)
			return clocks
		}
	}
	c.st.ReplayFailures++
	c.m.replayFailures.Inc()
	c.m.replayClocks.Add(clocks)
	return clocks
}

// noteBurstOutcome feeds the degradation window with one payload burst's
// detection outcome and updates the hysteresis state.
func (c *Controller) noteBurstOutcome(detected bool) {
	if c.faultWin == nil {
		return
	}
	if c.faultWinFill == len(c.faultWin) {
		if c.faultWin[c.faultWinIdx] {
			c.faultWinHits--
		}
	} else {
		c.faultWinFill++
	}
	c.faultWin[c.faultWinIdx] = detected
	if detected {
		c.faultWinHits++
	}
	c.faultWinIdx++
	if c.faultWinIdx == len(c.faultWin) {
		c.faultWinIdx = 0
	}
	if c.faultWinFill < len(c.faultWin) {
		return // rate estimate not warm yet
	}
	rate := float64(c.faultWinHits) / float64(c.faultWinFill)
	if !c.degraded && rate >= c.replay.DegradeThreshold {
		c.degraded = true
	} else if c.degraded && rate <= c.replay.DegradeThreshold/2 {
		c.degraded = false
	}
}
