package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d/100 times", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 50; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 49 {
		t.Error("zero seed produced a degenerate stream")
	}
}

func TestForkIndependence(t *testing.T) {
	r := New(7)
	f := r.Fork()
	if r.Uint64() == f.Uint64() {
		t.Error("fork mirrors parent")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %g, want ≈0.5", mean)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(2)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for d, c := range counts {
		if math.Abs(float64(c)-n/10)/float64(n/10) > 0.05 {
			t.Errorf("digit %d count %d deviates >5%%", d, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

func TestInt63NonNegative(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestBool(t *testing.T) {
	r := New(4)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %g", p)
	}
	if r.Bool(0) {
		t.Error("Bool(0) fired") // probability 0 must never fire
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(5)
	for _, mean := range []float64{1, 2, 4.5, 16} {
		var sum float64
		const n = 200000
		for i := 0; i < n; i++ {
			v := r.Geometric(mean)
			if v < 1 {
				t.Fatalf("geometric sample %d < 1", v)
			}
			sum += float64(v)
		}
		got := sum / n
		want := mean
		if mean <= 1 {
			want = 1
		}
		if math.Abs(got-want)/want > 0.03 {
			t.Errorf("Geometric(%g) mean = %g", mean, got)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(6)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(5)
		if v < 0 {
			t.Fatal("negative exponential sample")
		}
		sum += v
	}
	if got := sum / n; math.Abs(got-5)/5 > 0.03 {
		t.Errorf("Exp(5) mean = %g", got)
	}
}

func TestFill(t *testing.T) {
	r := New(8)
	for _, n := range []int{0, 1, 7, 8, 9, 64, 100} {
		b := make([]byte, n)
		r.Fill(b)
		if n >= 16 {
			allZero := true
			for _, x := range b {
				if x != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				t.Errorf("Fill(%d) produced all zeros", n)
			}
		}
	}
	// Byte-level uniformity check.
	big := make([]byte, 1<<16)
	r.Fill(big)
	var ones int
	for _, x := range big {
		for b := x; b != 0; b &= b - 1 {
			ones++
		}
	}
	if frac := float64(ones) / float64(len(big)*8); math.Abs(frac-0.5) > 0.01 {
		t.Errorf("bit density = %g", frac)
	}
}
