// Package rng provides a small, fast, deterministic pseudo-random number
// generator (xoshiro256★★ seeded via SplitMix64) so simulations are
// reproducible across runs and platforms without importing math/rand's
// global state.
package rng

import "math"

// RNG is a xoshiro256★★ generator. The zero value is invalid; use New.
type RNG struct {
	s [4]uint64
}

// New seeds a generator. Any seed (including 0) is valid: states are
// expanded through SplitMix64, which never yields the all-zero state.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Fork derives an independent generator from this one, for giving each
// simulation component its own stream.
func (r *RNG) Fork() *RNG { return New(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // negligible modulo bias for simulation use
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Geometric returns a sample from a geometric distribution with the given
// mean ≥ 1 (number of trials until first success, support {1, 2, ...}).
func (r *RNG) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	// Inverse CDF sampling.
	u := r.Float64()
	k := 1 + int(math.Floor(math.Log(1-u)/math.Log(1-p)))
	if k < 1 {
		k = 1
	}
	return k
}

// Exp returns an exponential sample with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	return -mean * math.Log(1-u)
}

// Fill writes random bytes into b.
func (r *RNG) Fill(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
		b[i+4] = byte(v >> 32)
		b[i+5] = byte(v >> 40)
		b[i+6] = byte(v >> 48)
		b[i+7] = byte(v >> 56)
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}
