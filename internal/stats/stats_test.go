package stats

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(4)
	for _, v := range []int{0, 0, 1, 3, 7, -2} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Count(0) != 3 { // -2 clamps to 0
		t.Errorf("Count(0) = %d", h.Count(0))
	}
	if h.Count(1) != 1 || h.Count(2) != 0 || h.Count(3) != 1 {
		t.Error("bucket counts wrong")
	}
	if h.Overflow() != 1 {
		t.Errorf("Overflow = %d", h.Overflow())
	}
	if h.Count(-1) != 0 || h.Count(99) != 0 {
		t.Error("out-of-range Count must be 0")
	}
	if got := h.Fraction(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Fraction(0) = %g", got)
	}
	if got := h.OverflowFraction(); math.Abs(got-1.0/6) > 1e-12 {
		t.Errorf("OverflowFraction = %g", got)
	}
	if got := h.TailFraction(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("TailFraction(1) = %g", got)
	}
	// Mean uses true values including overflow: (0+0+1+3+7+0)/6.
	if got := h.Mean(); math.Abs(got-11.0/6) > 1e-12 {
		t.Errorf("Mean = %g", got)
	}
	if !strings.Contains(h.String(), "%") {
		t.Error("String should render percentages")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0) // clamps to one bucket
	if h.Fraction(0) != 0 || h.Mean() != 0 || h.OverflowFraction() != 0 || h.TailFraction(0) != 0 {
		t.Error("empty histogram statistics must be zero")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(4), NewHistogram(4)
	a.Add(1)
	b.Add(1)
	b.Add(9)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 3 || a.Count(1) != 2 || a.Overflow() != 1 {
		t.Error("merge result wrong")
	}
	if err := a.Merge(NewHistogram(5)); err == nil {
		t.Error("mismatched merge must error")
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.N() != 0 {
		t.Error("empty summary")
	}
	for _, v := range []float64{2, -1, 5} {
		s.Add(v)
	}
	if s.N() != 3 || s.Min() != -1 || s.Max() != 5 {
		t.Errorf("summary: n=%d min=%g max=%g", s.N(), s.Min(), s.Max())
	}
	if math.Abs(s.Mean()-2) > 1e-12 {
		t.Errorf("Mean = %g", s.Mean())
	}
}

func TestMeanAndGeomean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %g", got)
	}
	if Geomean(nil) != 0 {
		t.Error("Geomean(nil)")
	}
	if got := Geomean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("Geomean = %g", got)
	}
	if Geomean([]float64{1, 0}) != 0 || Geomean([]float64{-1}) != 0 {
		t.Error("non-positive inputs must yield 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %g", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("P100 = %g", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("P50 = %g", got)
	}
	if got := Percentile(xs, 90); got != 5 {
		t.Errorf("P90 = %g", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentile mutated input")
	}
}
