// Package stats provides the small statistical containers the evaluation
// harness needs: integer histograms with overflow buckets (for idle-gap
// distributions), running summaries, and aggregate helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"smores/internal/floats"
)

// Histogram counts integer samples in [0, Buckets) plus an overflow bucket.
type Histogram struct {
	counts   []int64
	overflow int64
	total    int64
	sum      float64
}

// NewHistogram creates a histogram with the given number of exact buckets.
func NewHistogram(buckets int) *Histogram {
	if buckets < 1 {
		buckets = 1
	}
	return &Histogram{counts: make([]int64, buckets)}
}

// Add records a sample (negative samples clamp to bucket 0).
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	h.total++
	h.sum += float64(v)
	if v >= len(h.counts) {
		h.overflow++
		return
	}
	h.counts[v]++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int64 { return h.total }

// Buckets returns the number of exact buckets (excluding overflow).
func (h *Histogram) Buckets() int { return len(h.counts) }

// Equal reports whether two histograms have identical bucket layout and
// contents (counts, overflow, total, and running sum).
func (h *Histogram) Equal(o *Histogram) bool {
	if len(h.counts) != len(o.counts) || h.overflow != o.overflow ||
		h.total != o.total || !floats.Eq(h.sum, o.sum) {
		return false
	}
	for i, c := range h.counts {
		if c != o.counts[i] {
			return false
		}
	}
	return true
}

// Count returns the samples recorded exactly at v.
func (h *Histogram) Count(v int) int64 {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// Overflow returns the samples at or beyond the bucket range.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Fraction returns the fraction of samples exactly at v.
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Count(v)) / float64(h.total)
}

// OverflowFraction returns the fraction of samples beyond the bucket range.
func (h *Histogram) OverflowFraction() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.overflow) / float64(h.total)
}

// TailFraction returns the fraction of samples at or above v (including
// overflow).
func (h *Histogram) TailFraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	var n int64
	for i := v; i < len(h.counts); i++ {
		if i >= 0 {
			n += h.counts[i]
		}
	}
	n += h.overflow
	return float64(n) / float64(h.total)
}

// Mean returns the mean of all samples (overflow samples contribute their
// true values, which are retained in the running sum).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Clone returns an independent deep copy of the histogram. Accessors
// that expose a histogram beyond the owning module's lifetime should
// return a clone so later mutation cannot alias into the snapshot.
func (h *Histogram) Clone() *Histogram {
	return &Histogram{
		counts:   append([]int64(nil), h.counts...),
		overflow: h.overflow,
		total:    h.total,
		sum:      h.sum,
	}
}

// Merge adds another histogram's samples into h. Histograms must have the
// same bucket count.
func (h *Histogram) Merge(o *Histogram) error {
	if len(h.counts) != len(o.counts) {
		return fmt.Errorf("stats: merging histograms of %d and %d buckets", len(h.counts), len(o.counts))
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.overflow += o.overflow
	h.total += o.total
	h.sum += o.sum
	return nil
}

// String renders the first buckets as percentages, for logs.
func (h *Histogram) String() string {
	var b strings.Builder
	for i := range h.counts {
		if i >= 8 {
			b.WriteString("…")
			break
		}
		fmt.Fprintf(&b, "%d:%.1f%% ", i, h.Fraction(i)*100)
	}
	fmt.Fprintf(&b, "≥%d:%.1f%%", len(h.counts), h.OverflowFraction()*100)
	return b.String()
}

// Summary accumulates count/mean/min/max of float samples.
type Summary struct {
	n        int64
	sum      float64
	min, max float64
}

// Add records one sample.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
}

// N returns the sample count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest sample (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Geomean returns the geometric mean of positive xs; it returns 0 if any
// sample is non-positive or the input is empty.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs using
// nearest-rank on a sorted copy. Empty input yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}
