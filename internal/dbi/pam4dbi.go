// Package dbi implements the prior-art baselines the paper compares
// against: unconstrained PAM4 signaling, PAM4 with MSB/LSB Data Bus
// Inversion, and a Base+XOR-style data-similarity transform (the class of
// technique that whole-memory encryption defeats).
package dbi

import (
	"fmt"
	"math"

	"smores/internal/mta"
	"smores/internal/pam4"
)

// PAM4Codec transmits raw 2-bit-per-symbol PAM4 on a byte group,
// optionally with the intuitive PAM4 adaptation of DBI: per UI column, the
// eight MSBs and eight LSBs may be inverted independently, choosing the
// polarity pair that minimizes the column's total energy (including the
// flag symbol — PAM4 level energies are not bit-separable, so an
// energy-aware choice beats per-plane popcount and reproduces the paper's
// 446.5 fJ/bit). The two inversion flags travel on the DBI wire as one
// PAM4 symbol.
//
// Neither variant honors the MTA restriction — these are the paper's
// Table IV baselines "2-bit 1 symbol PAM4" and "... w/ DBI".
type PAM4Codec struct {
	dbi      bool
	model    *pam4.EnergyModel
	expected float64 // fJ per data bit on uniform data
}

// NewPAM4Codec builds the baseline codec. withDBI enables MSB/LSB DBI.
func NewPAM4Codec(withDBI bool, m *pam4.EnergyModel) *PAM4Codec {
	c := &PAM4Codec{dbi: withDBI, model: m}
	if withDBI {
		c.expected = expectedDBIPerBit(m)
	} else {
		c.expected = m.PAM4PerBit()
	}
	return c
}

// Name renders the Table IV row name.
func (c *PAM4Codec) Name() string {
	if c.dbi {
		return "2b1s PAM4/DBI"
	}
	return "2b1s PAM4"
}

// DBI reports whether MSB/LSB inversion is enabled.
func (c *PAM4Codec) DBI() bool { return c.dbi }

// BurstUIs returns the transfer time of dataBytes bytes through one group:
// 16 data bits per UI column.
func (c *PAM4Codec) BurstUIs(dataBytes int) int { return dataBytes / 2 }

// EncodeGroupBurst maps data (a multiple of 2 bytes) onto columns: UI u
// carries msbByte = data[2u] and lsbByte = data[2u+1], bit w of each on
// wire w.
func (c *PAM4Codec) EncodeGroupBurst(data []byte) ([]mta.Column, error) {
	if len(data) == 0 || len(data)%2 != 0 {
		return nil, fmt.Errorf("dbi: burst length %d is not a positive multiple of 2", len(data))
	}
	cols := make([]mta.Column, len(data)/2)
	for u := range cols {
		msb, lsb := data[2*u], data[2*u+1]
		var flagM, flagL uint8
		if c.dbi {
			flagM, flagL = c.bestPolarity(msb, lsb)
			if flagM == 1 {
				msb = ^msb
			}
			if flagL == 1 {
				lsb = ^lsb
			}
		}
		for w := 0; w < mta.GroupDataWires; w++ {
			cols[u][w] = pam4.LevelFromBits(msb>>uint(w), lsb>>uint(w))
		}
		cols[u][mta.DBIWire] = pam4.LevelFromBits(flagM, flagL)
	}
	return cols, nil
}

// bestPolarity picks the inversion pair minimizing column energy
// (data symbols plus the flag symbol). Ties prefer fewer inversions.
func (c *PAM4Codec) bestPolarity(msb, lsb uint8) (flagM, flagL uint8) {
	best := math.Inf(1)
	for a := uint8(0); a < 2; a++ {
		for b := uint8(0); b < 2; b++ {
			if e := c.columnEnergy(msb, lsb, a, b); e < best {
				best, flagM, flagL = e, a, b
			}
		}
	}
	return flagM, flagL
}

func (c *PAM4Codec) columnEnergy(msb, lsb, flagM, flagL uint8) float64 {
	if flagM == 1 {
		msb = ^msb
	}
	if flagL == 1 {
		lsb = ^lsb
	}
	e := c.model.SymbolEnergy(pam4.LevelFromBits(flagM, flagL))
	for w := 0; w < mta.GroupDataWires; w++ {
		e += c.model.SymbolEnergy(pam4.LevelFromBits(msb>>uint(w), lsb>>uint(w)))
	}
	return e
}

// DecodeGroupBurst reverses EncodeGroupBurst.
func (c *PAM4Codec) DecodeGroupBurst(cols []mta.Column) ([]byte, bool) {
	if len(cols) == 0 {
		return nil, false
	}
	data := make([]byte, 2*len(cols))
	for u, col := range cols {
		var msb, lsb uint8
		for w := 0; w < mta.GroupDataWires; w++ {
			m, l := col[w].Bits()
			msb |= m << uint(w)
			lsb |= l << uint(w)
		}
		flagM, flagL := col[mta.DBIWire].Bits()
		if !c.dbi && (flagM != 0 || flagL != 0) {
			return nil, false
		}
		if flagM == 1 {
			msb = ^msb
		}
		if flagL == 1 {
			lsb = ^lsb
		}
		data[2*u], data[2*u+1] = msb, lsb
	}
	return data, true
}

// ExpectedPerBit returns the exact expected fJ per data bit on uniform
// random data (the paper's 528.8 plain / 446.5 with DBI).
func (c *PAM4Codec) ExpectedPerBit() float64 { return c.expected }

// expectedDBIPerBit enumerates all 2^8 × 2^8 MSB/LSB column patterns.
func expectedDBIPerBit(m *pam4.EnergyModel) float64 {
	c := &PAM4Codec{dbi: true, model: m}
	var total float64
	for msbPat := 0; msbPat < 256; msbPat++ {
		for lsbPat := 0; lsbPat < 256; lsbPat++ {
			flagM, flagL := c.bestPolarity(uint8(msbPat), uint8(lsbPat))
			total += c.columnEnergy(uint8(msbPat), uint8(lsbPat), flagM, flagL)
		}
	}
	avgColumn := total / (256 * 256)
	return avgColumn / 16 // 16 data bits per column
}

func popcount8(b uint8) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}
