package dbi

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"smores/internal/mta"
	"smores/internal/pam4"
)

func approx(t *testing.T, name string, got, want, tolPct float64) {
	t.Helper()
	if math.Abs(got-want)/math.Abs(want)*100 > tolPct {
		t.Errorf("%s = %g, want %g (±%g%%)", name, got, want, tolPct)
	}
}

// TestExpectedPerBitMatchesTableIV pins the two unconstrained baselines of
// Table IV: 528.8 fJ/bit plain, 446.5 fJ/bit with MSB/LSB DBI.
func TestExpectedPerBitMatchesTableIV(t *testing.T) {
	m := pam4.DefaultEnergyModel()
	plain := NewPAM4Codec(false, m)
	withDBI := NewPAM4Codec(true, m)
	approx(t, "plain PAM4", plain.ExpectedPerBit(), 528.8, 0.05)
	t.Logf("PAM4/DBI expected = %.1f fJ/bit (paper: 446.5)", withDBI.ExpectedPerBit())
	approx(t, "PAM4/DBI", withDBI.ExpectedPerBit(), 446.5, 1.0)
	if withDBI.ExpectedPerBit() >= plain.ExpectedPerBit() {
		t.Error("DBI must save energy on uniform data")
	}
}

func TestPAM4RoundTrip(t *testing.T) {
	m := pam4.DefaultEnergyModel()
	rng := rand.New(rand.NewSource(4))
	for _, withDBI := range []bool{false, true} {
		c := NewPAM4Codec(withDBI, m)
		for trial := 0; trial < 200; trial++ {
			data := make([]byte, 16)
			rng.Read(data)
			cols, err := c.EncodeGroupBurst(data)
			if err != nil {
				t.Fatal(err)
			}
			if len(cols) != c.BurstUIs(len(data)) {
				t.Fatalf("%d columns, want %d", len(cols), c.BurstUIs(len(data)))
			}
			got, ok := c.DecodeGroupBurst(cols)
			if !ok || !bytes.Equal(got, data) {
				t.Fatalf("%s roundtrip failed", c.Name())
			}
		}
	}
}

func TestPAM4RoundTripQuick(t *testing.T) {
	c := NewPAM4Codec(true, pam4.DefaultEnergyModel())
	f := func(data [16]byte) bool {
		cols, err := c.EncodeGroupBurst(data[:])
		if err != nil {
			return false
		}
		got, ok := c.DecodeGroupBurst(cols)
		return ok && bytes.Equal(got, data[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDBIColumnsAreMinorityOnes(t *testing.T) {
	c := NewPAM4Codec(true, pam4.DefaultEnergyModel())
	// All-ones data must be inverted to all-zeros + flags.
	data := []byte{0xff, 0xff}
	cols, err := c.EncodeGroupBurst(data)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < mta.GroupDataWires; w++ {
		if cols[0][w] != pam4.L0 {
			t.Errorf("wire %d = %v, want L0 after inversion", w, cols[0][w])
		}
	}
	if cols[0][mta.DBIWire] != pam4.L3 {
		t.Errorf("DBI flags = %v, want L3 (both inverted)", cols[0][mta.DBIWire])
	}
}

func TestPlainCodecRejectsDBIFlags(t *testing.T) {
	m := pam4.DefaultEnergyModel()
	enc := NewPAM4Codec(true, m)
	dec := NewPAM4Codec(false, m)
	cols, err := enc.EncodeGroupBurst([]byte{0xff, 0xff})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dec.DecodeGroupBurst(cols); ok {
		t.Error("plain codec accepted driven DBI flags")
	}
}

func TestEncodeValidation(t *testing.T) {
	c := NewPAM4Codec(false, pam4.DefaultEnergyModel())
	if _, err := c.EncodeGroupBurst(nil); err == nil {
		t.Error("empty burst must error")
	}
	if _, err := c.EncodeGroupBurst([]byte{1}); err == nil {
		t.Error("odd-length burst must error")
	}
	if _, ok := c.DecodeGroupBurst(nil); ok {
		t.Error("empty decode must fail")
	}
	if c.Name() != "2b1s PAM4" || NewPAM4Codec(true, pam4.DefaultEnergyModel()).Name() != "2b1s PAM4/DBI" {
		t.Error("names wrong")
	}
	if c.DBI() {
		t.Error("plain codec reports DBI")
	}
}

// TestDBIEnergyMonteCarlo cross-checks the exact enumeration against the
// real encoder.
func TestDBIEnergyMonteCarlo(t *testing.T) {
	m := pam4.DefaultEnergyModel()
	c := NewPAM4Codec(true, m)
	rng := rand.New(rand.NewSource(13))
	var joules, bits float64
	for trial := 0; trial < 3000; trial++ {
		data := make([]byte, 16)
		rng.Read(data)
		cols, err := c.EncodeGroupBurst(data)
		if err != nil {
			t.Fatal(err)
		}
		for _, col := range cols {
			for _, l := range col {
				joules += m.SymbolEnergy(l)
			}
		}
		bits += float64(len(data)) * 8
	}
	approx(t, "DBI MC", joules/bits, c.ExpectedPerBit(), 0.5)
}

func TestBaseXORRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, stride := range []int{1, 4, 8} {
		for trial := 0; trial < 50; trial++ {
			data := make([]byte, 64)
			rng.Read(data)
			if got := UndoBaseXOR(BaseXOR(data, stride), stride); !bytes.Equal(got, data) {
				t.Fatalf("stride %d: roundtrip failed", stride)
			}
		}
	}
	short := []byte{1, 2}
	if got := BaseXOR(short, 4); !bytes.Equal(got, short) {
		t.Error("short input must pass through")
	}
	if got := BaseXOR(short, 0); !bytes.Equal(got, short) {
		t.Error("zero stride must pass through")
	}
}

// TestBaseXOROnSimilarVsEncryptedData demonstrates the paper's premise:
// similarity transforms produce compressible residuals on smooth data and
// nothing on encrypted (uniform random) data.
func TestBaseXOROnSimilarVsEncryptedData(t *testing.T) {
	// Smooth data: a slowly increasing ramp, stride 4 (32-bit elements).
	smooth := make([]byte, 256)
	for i := range smooth {
		smooth[i] = byte(i / 4)
	}
	rng := rand.New(rand.NewSource(23))
	encrypted := make([]byte, 256)
	rng.Read(encrypted)

	smoothZeros := ZeroFraction(BaseXOR(smooth, 4))
	encZeros := ZeroFraction(BaseXOR(encrypted, 4))
	if smoothZeros < 0.7 {
		t.Errorf("smooth residual zero fraction = %.2f, want ≥0.7", smoothZeros)
	}
	if smoothZeros <= ZeroFraction(smooth)+0.1 {
		t.Errorf("transform gained too little on smooth data: %.2f vs %.2f",
			smoothZeros, ZeroFraction(smooth))
	}
	if math.Abs(encZeros-0.5) > 0.05 {
		t.Errorf("encrypted residual zero fraction = %.2f, want ≈0.5", encZeros)
	}
}

func TestZeroFraction(t *testing.T) {
	if ZeroFraction(nil) != 0 {
		t.Error("empty input")
	}
	if ZeroFraction([]byte{0}) != 1 {
		t.Error("all zeros")
	}
	if ZeroFraction([]byte{0xff}) != 0 {
		t.Error("all ones")
	}
	if ZeroFraction([]byte{0x0f}) != 0.5 {
		t.Error("half ones")
	}
}
