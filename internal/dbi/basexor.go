package dbi

// Base+XOR is the class of data-similarity transform (MiLC, Base+XOR,
// and friends) that pre-dates SMOREs: each element of a burst is XORed
// with a base element, so similar data yields mostly-zero residuals that
// cheap codes exploit. The paper's point is that whole-memory encryption
// destroys this similarity — the transform is included here so examples
// and benchmarks can demonstrate exactly that failure.

// BaseXOR returns data transformed against the given stride: element i
// (a stride-sized chunk) is XORed with element i−1; element 0 is emitted
// verbatim as the base. The transform is an involution given the same
// reconstruction order, see UndoBaseXOR.
func BaseXOR(data []byte, stride int) []byte {
	if stride <= 0 || len(data) <= stride {
		return append([]byte(nil), data...)
	}
	out := make([]byte, len(data))
	copy(out, data[:stride])
	for i := stride; i < len(data); i++ {
		out[i] = data[i] ^ data[i-stride]
	}
	return out
}

// UndoBaseXOR reverses BaseXOR with the same stride.
func UndoBaseXOR(residual []byte, stride int) []byte {
	if stride <= 0 || len(residual) <= stride {
		return append([]byte(nil), residual...)
	}
	out := make([]byte, len(residual))
	copy(out, residual[:stride])
	for i := stride; i < len(residual); i++ {
		out[i] = residual[i] ^ out[i-stride]
	}
	return out
}

// ZeroFraction returns the fraction of zero bits in data — the quantity
// similarity codes feed on (1.0 means free transfers under a
// zero-suppressing code, 0.5 is what encrypted data looks like).
func ZeroFraction(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	zeros := 0
	for _, b := range data {
		zeros += 8 - popcount8(b)
	}
	return float64(zeros) / float64(len(data)*8)
}
