// Package smores is a library-grade reproduction of "Saving PAM4 Bus
// Energy with SMOREs: Sparse Multi-level Opportunistic Restricted
// Encodings" (HPCA 2022).
//
// It provides:
//
//   - a calibrated electrical/energy model of the GDDR6X PAM4 interface
//     (pam4 driver network, per-symbol energies, postamble cost);
//   - the MTA baseline codec and the SMOREs sparse codecs (4b{3..8}s at
//     two or three levels, restricted DBI, seam level shifting);
//   - the opportunistic gap-detection mechanism (static/variable code
//     specification × exhaustive/conservative detection);
//   - a cycle-level GPU memory-system simulator (sectored LLC, FR-FCFS
//     GDDR6X controller, 42 calibrated workload models) that regenerates
//     the paper's evaluation (Figures 5–8, Tables IV–V);
//   - a hardware-cost estimator reproducing the paper's Figure 7.
//
// The facade re-exports the main types; the full API lives in the
// internal packages and is exercised by the examples and commands.
package smores

import (
	"smores/internal/bus"
	"smores/internal/core"
	"smores/internal/memctrl"
	"smores/internal/mta"
	"smores/internal/pam4"
	"smores/internal/report"
	"smores/internal/workload"
)

// Re-exported core types. Aliases keep the internal packages as the
// single source of truth while letting users write smores.Scheme etc.
type (
	// Level is one PAM4 signal level (L0 cheapest, L3 most expensive).
	Level = pam4.Level
	// Seq is a packed PAM4 symbol sequence.
	Seq = pam4.Seq
	// EnergyModel maps levels to femtojoules per unit interval.
	EnergyModel = pam4.EnergyModel
	// DriverConfig is the PAM4 output-stage electrical network.
	DriverConfig = pam4.DriverConfig
	// MTACodec is the GDDR6X baseline encoder/decoder.
	MTACodec = mta.Codec
	// Family is the SMOREs sparse codec family indexed by code length.
	Family = core.Family
	// SparseCodec encodes group bursts with one sparse codebook.
	SparseCodec = core.SparseGroupCodec
	// Scheme is one SMOREs design point (code specification × gap
	// detection).
	Scheme = core.Scheme
	// Channel is the 18-wire data-channel energy model.
	Channel = bus.Channel
	// ChannelStats reports channel energy and occupancy.
	ChannelStats = bus.Stats
	// Workload is one application traffic model.
	Workload = workload.Profile
	// RunSpec selects a simulation configuration.
	RunSpec = report.RunSpec
	// AppResult is one (application, policy) simulation outcome.
	AppResult = report.AppResult
	// FleetResult is a whole-fleet simulation outcome.
	FleetResult = report.FleetResult
)

// Scheme constants (the paper's design space).
const (
	StaticCode   = core.StaticCode
	VariableCode = core.VariableCode
	Exhaustive   = core.Exhaustive
	Conservative = core.Conservative
)

// Encoding policies for simulations.
const (
	BaselineMTA  = memctrl.BaselineMTA
	OptimizedMTA = memctrl.OptimizedMTA
	SMOREs       = memctrl.SMOREs
)

// DefaultEnergyModel returns the paper-calibrated GDDR6X PAM4 energy
// model (528.8 fJ/bit raw PAM4, 961/1538/1730 fJ for L1/L2/L3).
func DefaultEnergyModel() *EnergyModel { return pam4.DefaultEnergyModel() }

// NewMTACodec builds the standard GDDR6X MTA codec.
func NewMTACodec(m *EnergyModel) *MTACodec { return mta.New(m) }

// DefaultFamily builds the paper's preferred sparse family: 3-level
// codes with restricted DBI, paper-faithful constructions.
func DefaultFamily() *Family { return core.DefaultFamily() }

// NewChannel builds a data-channel model with default codecs, in
// expected-energy mode. For exact-data accounting use the bus package
// directly.
func NewChannel() *Channel { return bus.New(bus.Config{}) }

// Fleet returns the 42 evaluated application models.
func Fleet() []Workload { return workload.Fleet() }

// WorkloadByName looks up one of the 42 applications.
func WorkloadByName(name string) (Workload, bool) { return workload.ByName(name) }

// RunApp simulates one application under one configuration.
func RunApp(w Workload, spec RunSpec) (AppResult, error) { return report.RunApp(w, spec) }

// RunFleet simulates all 42 applications under one configuration.
func RunFleet(spec RunSpec) (FleetResult, error) { return report.RunFleet(spec) }

// PaperSchemes returns the three Table V design points.
func PaperSchemes() []Scheme { return core.PaperSchemes() }
