// Command smores-hwcost prints the encoder hardware-cost estimates that
// reproduce the paper's Figure 7 (NAND2-equivalent area and delay for the
// MTA encoder and the sparse encoders with and without DBI), including
// the DBI-removal ablation the paper quotes (42–86% area savings).
package main

import (
	"flag"
	"fmt"
	"os"

	"smores/internal/pam4"
	"smores/internal/report"
)

func main() {
	ablation := flag.Bool("ablation", true, "also print the DBI-removal savings")
	flag.Parse()

	m := pam4.DefaultEnergyModel()
	out, err := report.Fig7Hardware(m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smores-hwcost:", err)
		os.Exit(1)
	}
	fmt.Println(out)

	if *ablation {
		fmt.Println(report.DBIAblation(m))
	}
}
