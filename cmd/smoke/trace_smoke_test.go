package smoke

// Black-box pipeline tests for smores-trace's columnar-store verbs and
// their hand-off to smores-eval: record → pack → scan → verify → replay
// → unpack must round-trip byte-identically, and a CSV-imported store
// must run end-to-end through the evaluation as a named fleet member.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func runTool(t *testing.T, dir, name string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin(dir, name), args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", name, strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestTraceStorePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := buildMains(t)
	work := t.TempDir()
	smtr := filepath.Join(work, "t.smtr")
	store := filepath.Join(work, "t.store")

	// A zero-access recording is a valid empty trace, not a header error.
	empty := filepath.Join(work, "empty.smtr")
	runTool(t, dir, "smores-trace", "-record", "bfs", "-n", "0", "-out", empty)
	if out := runTool(t, dir, "smores-trace", "-info", empty); !strings.Contains(out, "empty trace") {
		t.Errorf("-info on a zero-access recording: %q, want \"empty trace\"", out)
	}

	runTool(t, dir, "smores-trace", "-record", "bfs", "-n", "400", "-out", smtr)
	out := runTool(t, dir, "smores-trace", "-pack", smtr, "-store", store, "-shards", "2", "-name", "bfs-rec")
	if !strings.Contains(out, "packed 400 records") {
		t.Fatalf("pack: %q", out)
	}

	// -info with the JSON artifact CI uploads.
	statsPath := filepath.Join(work, "store-stats.json")
	out = runTool(t, dir, "smores-trace", "-info", store, "-stats-json", statsPath)
	if !strings.Contains(out, `store of "bfs-rec"`) || !strings.Contains(out, "400 records in 2 shards") {
		t.Errorf("store info: %q", out)
	}
	raw, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Records         int64 `json:"records"`
		Shards          int   `json:"shards"`
		CompressedBytes int64 `json:"compressed_bytes"`
	}
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatalf("stats artifact is not JSON: %v\n%s", err, raw)
	}
	if stats.Records != 400 || stats.Shards != 2 || stats.CompressedBytes <= 0 {
		t.Errorf("stats artifact wrong: %+v", stats)
	}

	// A sector-only scan decodes just the sector column: the think, flags
	// and payload rows must report zero bytes read.
	out = runTool(t, dir, "smores-trace", "-scan", store, "-fields", "sector")
	if !strings.Contains(out, "scanned 400 of 400 records") {
		t.Errorf("scan: %q", out)
	}
	for _, col := range []string{"think", "flags", "payload"} {
		re := regexp.MustCompile(col + `\s+0 bytes read`)
		if !re.MatchString(out) {
			t.Errorf("sector-only scan read %s bytes:\n%s", col, out)
		}
	}

	if out = runTool(t, dir, "smores-trace", "-verify", store); !strings.Contains(out, "all checksums good") {
		t.Errorf("verify: %q", out)
	}

	// Replaying the store must reproduce the flat trace's replay exactly
	// (same accesses, clocks, energy, gap histogram).
	flat := runTool(t, dir, "smores-trace", "-replay", smtr)
	packed := runTool(t, dir, "smores-trace", "-replay", store)
	if flat != packed {
		t.Errorf("store replay diverged from flat replay:\nflat   %q\npacked %q", flat, packed)
	}

	// Unpacking restores the original SMTR byte-for-byte (the encoding is
	// canonical).
	unpacked := filepath.Join(work, "u.smtr")
	runTool(t, dir, "smores-trace", "-unpack", store, "-out", unpacked)
	a, err := os.ReadFile(smtr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(unpacked)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("unpack is not byte-identical: %d vs %d bytes", len(a), len(b))
	}
}

// TestTraceImportEval imports a CSV memory trace and runs it through the
// full evaluation as an extra fleet member.
func TestTraceImportEval(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := buildMains(t)
	work := t.TempDir()

	csv := filepath.Join(work, "cam.csv")
	lines := []string{"addr,think,op"}
	for i := 0; i < 200; i++ {
		op := "R"
		if i%3 == 0 {
			op = "W"
		}
		lines = append(lines, fmt.Sprintf("0x%x,1,%s", i*32, op))
	}
	if err := os.WriteFile(csv, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	store := filepath.Join(work, "cam.store")
	out := runTool(t, dir, "smores-trace", "-import", csv, "-store", store)
	if !strings.Contains(out, `as workload "cam"`) {
		t.Fatalf("import: %q", out)
	}

	jsonPath := filepath.Join(work, "eval.json")
	cmd := exec.Command(bin(dir, "smores-eval"),
		"-table5", "-accesses", "200", "-trace", store, "-json", jsonPath)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("smores-eval -trace: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), `as fleet member "cam"`) {
		t.Errorf("eval did not announce the trace member:\n%s", stderr.String())
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"cam"`)) {
		t.Error("evaluation JSON has no row for the imported workload")
	}
}
