// Package smoke black-box tests the command-line entry points: every
// main must parse its flags (-h exits 0, an unknown flag exits 2), and
// smores-bench must emit a well-formed JSON report on stdout and exit 1
// when gating against a baseline with an injected regression. The mains
// are built once per test run with the local toolchain.
package smoke

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
)

var mains = []string{
	"smores-bench",
	"smores-codebook",
	"smores-eval",
	"smores-fault",
	"smores-hwcost",
	"smores-lint",
	"smores-serve",
	"smores-sim",
	"smores-trace",
	"smores-verilog",
}

// buildMains compiles every cmd/ binary into a shared temp dir once.
func buildMains(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir+string(filepath.Separator), "smores/cmd/...")
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building mains: %v\n%s", err, out)
	}
	return dir
}

func bin(dir, name string) string {
	if runtime.GOOS == "windows" {
		name += ".exe"
	}
	return filepath.Join(dir, name)
}

func TestMainsParseFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := buildMains(t)
	for _, name := range mains {
		name := name
		t.Run(name, func(t *testing.T) {
			// -h prints usage and exits 0.
			out, err := exec.Command(bin(dir, name), "-h").CombinedOutput()
			if err != nil {
				t.Errorf("%s -h: %v\n%s", name, err, out)
			}
			if !bytes.Contains(out, []byte("Usage")) && !bytes.Contains(out, []byte("-")) {
				t.Errorf("%s -h printed no usage:\n%s", name, out)
			}
			// An unknown flag is a parse error: exit code 2, never a crash.
			err = exec.Command(bin(dir, name), "-definitely-not-a-flag").Run()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 2 {
				t.Errorf("%s with bad flag: err=%v, want exit code 2", name, err)
			}
		})
	}
}

// benchReport mirrors the smores-bench JSON schema fields the smoke test
// relies on.
type benchReport struct {
	Version int    `json:"version"`
	Date    string `json:"date"`
	Host    struct {
		Hostname string `json:"hostname"`
		OS       string `json:"os"`
	} `json:"host"`
	Accesses int64 `json:"accesses"`
	Apps     int   `json:"apps"`
	Schemes  []struct {
		Label       string  `json:"label"`
		Energy      float64 `json:"energy_pj_per_bit"`
		WallSeconds float64 `json:"wall_seconds"`
	} `json:"schemes"`
}

func runBench(t *testing.T, dir string, args ...string) ([]byte, error) {
	t.Helper()
	cmd := exec.Command(bin(dir, "smores-bench"),
		append([]string{"-accesses", "60", "-q", "-out", "-"}, args...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	if err != nil {
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("smores-bench did not run: %v\n%s", err, stderr.String())
		}
	}
	return stdout.Bytes(), err
}

func TestBenchJSONShapeAndRegressionGate(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := buildMains(t)

	raw, err := runBench(t, dir)
	if err != nil {
		t.Fatalf("plain bench run failed: %v", err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, raw)
	}
	if rep.Version == 0 || rep.Date == "" || rep.Host.OS == "" {
		t.Errorf("report header incomplete: %+v", rep)
	}
	if rep.Accesses != 60 || rep.Apps == 0 {
		t.Errorf("accesses=%d apps=%d", rep.Accesses, rep.Apps)
	}
	if len(rep.Schemes) != 5 {
		t.Fatalf("schemes = %d, want the 5-policy evaluation matrix", len(rep.Schemes))
	}
	for _, s := range rep.Schemes {
		if s.Label == "" || s.Energy <= 0 || s.WallSeconds <= 0 {
			t.Errorf("scheme row incomplete: %+v", s)
		}
	}

	// Same run gated against itself: 0 regressions, exit 0.
	self := filepath.Join(t.TempDir(), "self.json")
	if err := os.WriteFile(self, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runBench(t, dir, "-compare", self); err != nil {
		t.Errorf("self-comparison regressed: %v", err)
	}

	// Injected regression: halve every baseline energy so the current run
	// is 2x worse than the "baseline" — must exit 1.
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	for _, s := range doc["schemes"].([]any) {
		row := s.(map[string]any)
		row["energy_pj_per_bit"] = row["energy_pj_per_bit"].(float64) / 2
	}
	worse, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(t.TempDir(), "regressed.json")
	if err := os.WriteFile(bad, worse, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = runBench(t, dir, "-compare", bad)
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Errorf("injected energy regression: err=%v, want exit code 1", err)
	}

	// A malformed tolerance is a usage error (exit 1 via fail()).
	if _, err := runBench(t, dir, "-tolerance", "2.5"); err == nil {
		t.Error("tolerance 2.5 accepted; want rejection (outside [0,1])")
	}
}

// TestServeSmoke runs the telemetry service's built-in self-test as a
// black box: smores-serve -smoke must submit sessions over HTTP, verify
// stream reconciliation and fleet conservation, write the roll-up JSON
// artifact, and exit 0.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := buildMains(t)
	rollup := filepath.Join(t.TempDir(), "fleet-rollup.json")
	out, err := exec.Command(bin(dir, "smores-serve"),
		"-smoke", "-smoke-sessions", "3", "-out", rollup).CombinedOutput()
	if err != nil {
		t.Fatalf("smores-serve -smoke: %v\n%s", err, out)
	}
	raw, err := os.ReadFile(rollup)
	if err != nil {
		t.Fatalf("self-test wrote no roll-up: %v", err)
	}
	var fams []map[string]any
	if err := json.Unmarshal(raw, &fams); err != nil {
		t.Fatalf("roll-up is not a JSON family list: %v", err)
	}
	if len(fams) == 0 {
		t.Fatalf("roll-up is empty")
	}
}
