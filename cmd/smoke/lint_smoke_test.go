package smoke

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestLintCleanTree is the self-gate: the committed tree must carry zero
// findings from the domain analyzer suite, exactly as the CI lint job
// demands. It also checks the machine-readable surface: -json on a clean
// tree is an empty JSON array, and -list names every analyzer.
func TestLintCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := buildMains(t)
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}

	run := func(args ...string) ([]byte, []byte, error) {
		cmd := exec.Command(bin(dir, "smores-lint"), args...)
		cmd.Dir = root
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		err := cmd.Run()
		return stdout.Bytes(), stderr.Bytes(), err
	}

	// Clean tree: exit 0, no findings on stdout.
	out, errOut, err := run("./...")
	if err != nil {
		t.Fatalf("smores-lint on the committed tree: %v\nstdout:\n%s\nstderr:\n%s", err, out, errOut)
	}
	if len(bytes.TrimSpace(out)) != 0 {
		t.Errorf("clean tree printed findings:\n%s", out)
	}

	// -json on a clean tree is an empty array.
	out, errOut, err = run("-json", "./...")
	if err != nil {
		t.Fatalf("smores-lint -json: %v\n%s", err, errOut)
	}
	var findings []map[string]any
	if err := json.Unmarshal(out, &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out)
	}
	if len(findings) != 0 {
		t.Errorf("-json reported %d findings on a clean tree", len(findings))
	}

	// -list names the full suite.
	out, _, err = run("-list")
	if err != nil {
		t.Fatalf("smores-lint -list: %v", err)
	}
	for _, name := range []string{"codebookconst", "floateq", "hotpathalloc", "nilsafeobs", "statsmirror"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out)
		}
	}

	// An unknown -only selection is a usage error (exit 2).
	_, _, err = run("-only", "nonesuch", "./...")
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("-only nonesuch: err=%v, want exit code 2", err)
	}
}
