package smoke

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestLintCleanTree is the self-gate: the committed tree must carry zero
// findings from the domain analyzer suite, exactly as the CI lint job
// demands. It also checks the machine-readable surface: -json on a clean
// tree is an empty JSON array, and -list names every analyzer.
func TestLintCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := buildMains(t)
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}

	run := func(args ...string) ([]byte, []byte, error) {
		cmd := exec.Command(bin(dir, "smores-lint"), args...)
		cmd.Dir = root
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		err := cmd.Run()
		return stdout.Bytes(), stderr.Bytes(), err
	}

	// Clean tree: exit 0, no findings on stdout.
	out, errOut, err := run("./...")
	if err != nil {
		t.Fatalf("smores-lint on the committed tree: %v\nstdout:\n%s\nstderr:\n%s", err, out, errOut)
	}
	if len(bytes.TrimSpace(out)) != 0 {
		t.Errorf("clean tree printed findings:\n%s", out)
	}

	// -json on a clean tree is an empty array.
	out, errOut, err = run("-json", "./...")
	if err != nil {
		t.Fatalf("smores-lint -json: %v\n%s", err, errOut)
	}
	var findings []map[string]any
	if err := json.Unmarshal(out, &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out)
	}
	if len(findings) != 0 {
		t.Errorf("-json reported %d findings on a clean tree", len(findings))
	}

	// -list names the full ten-analyzer catalog.
	out, _, err = run("-list")
	if err != nil {
		t.Fatalf("smores-lint -list: %v", err)
	}
	for _, name := range []string{
		"atomicmix", "codebookconst", "detorder", "floateq", "hotpathalloc",
		"nilsafeobs", "seedderive", "statsmirror", "wallclock", "zeroonerr",
	} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out)
		}
	}

	// -sarif on a clean tree: a complete SARIF 2.1.0 document with the
	// full rule catalog and an empty (but present) results array, so CI
	// can upload it unconditionally.
	out, errOut, err = run("-sarif", "./...")
	if err != nil {
		t.Fatalf("smores-lint -sarif: %v\n%s", err, errOut)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string           `json:"name"`
					Rules []map[string]any `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("-sarif output is not valid JSON: %v\n%s", err, out)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("-sarif document shape: version=%q runs=%d", doc.Version, len(doc.Runs))
	}
	if got := len(doc.Runs[0].Tool.Driver.Rules); got != 10 {
		t.Errorf("-sarif rule catalog has %d rules, want 10", got)
	}
	if got := len(doc.Runs[0].Results); got != 0 {
		t.Errorf("-sarif reported %d results on a clean tree", got)
	}

	// -sarif against a knowingly dirty fixture package carries results
	// with repo-relative artifact URIs (what code-scanning upload needs).
	out, _, err = run("-only", "seedderive", "-sarif", "./internal/analyzers/seedderive/testdata/src/a")
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("-sarif on dirty fixture: err=%v, want exit code 1", err)
	}
	doc.Runs = nil
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("-sarif (dirty) output is not valid JSON: %v\n%s", err, out)
	}
	if len(doc.Runs) != 1 || len(doc.Runs[0].Results) == 0 {
		t.Fatalf("-sarif on dirty fixture produced no results:\n%s", out)
	}
	for _, r := range doc.Runs[0].Results {
		if r.RuleID != "seedderive" {
			t.Errorf("-sarif dirty-fixture result has ruleId %q, want seedderive", r.RuleID)
		}
		uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI
		if filepath.IsAbs(uri) || !strings.HasPrefix(uri, "internal/analyzers/seedderive/testdata/") {
			t.Errorf("-sarif artifact URI not repo-relative: %q", uri)
		}
	}

	// -json and -sarif are mutually exclusive (usage error, exit 2).
	_, _, err = run("-json", "-sarif", "./...")
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("-json -sarif: err=%v, want exit code 2", err)
	}

	// An unknown -only selection is a usage error (exit 2).
	_, _, err = run("-only", "nonesuch", "./...")
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("-only nonesuch: err=%v, want exit code 2", err)
	}
}
