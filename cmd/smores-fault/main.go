// Command smores-fault runs Monte Carlo link-reliability campaigns:
// it sweeps symbol-error rate × encoding scheme × error model × EDC
// layer over real workloads and reports, per campaign point, each
// detection layer's coverage share (transition legality, codebook
// membership, CRC-8), the silent-corruption rate, and the EDC replay
// cost in clocks and fJ/bit. Same seed ⇒ byte-identical JSON; every
// point's layered accounting is conservation-checked (corrupted =
// legality + codebook + EDC + silent) before anything is printed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"smores/internal/core"
	"smores/internal/fault"
	"smores/internal/memctrl"
	"smores/internal/report"
	"smores/internal/workload"
)

func main() {
	var (
		rates    = flag.String("rates", "1e-4,1e-3,1e-2", "comma-separated symbol error rates to sweep")
		models   = flag.String("models", "uniform", "comma-separated error models: uniform, eye, bursty")
		edcMode  = flag.String("edc", "both", "CRC-8 layer sweep: off, on, or both")
		schemes  = flag.String("schemes", "default", "encoding coordinates: default (MTA + variable SMOREs) or all (the 5-policy evaluation matrix)")
		apps     = flag.Int("apps", 4, "fleet applications sampled per point (spread across the 42-app fleet)")
		accesses = flag.Int64("accesses", 8000, "per-app workload length")
		seed     = flag.Uint64("seed", 1, "deterministic seed (traffic and error processes)")
		workers  = flag.Int("j", 0, "concurrent simulations (0 = GOMAXPROCS)")
		burstLen = flag.Float64("burst-len", 0, "bursty model's mean error-burst length in symbol columns (0 = model default)")
		retries  = flag.Int("retries", 0, "EDC replay retry budget (0 = default 3)")
		degrade  = flag.Float64("degrade", 0, "detected-rate threshold for graceful degradation to MTA-only (0 disables)")
		jsonOut  = flag.String("json", "", "write the machine-readable campaign to this file ('-' for stdout)")
		gate     = flag.Bool("gate-silent", false, "exit 1 if any EDC-enabled point recorded silent corruption")
	)
	flag.Parse()

	spec := report.CampaignSpec{
		Accesses: *accesses,
		Seed:     *seed,
		Workers:  *workers,
		BurstLen: *burstLen,
		Replay:   memctrl.ReplayConfig{RetryBudget: *retries, DegradeThreshold: *degrade},
	}

	for _, f := range strings.Split(*rates, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		fail(err)
		spec.Rates = append(spec.Rates, r)
	}
	for _, name := range strings.Split(*models, ",") {
		m, err := fault.ParseModel(strings.TrimSpace(name))
		fail(err)
		spec.Models = append(spec.Models, m)
	}
	switch *edcMode {
	case "off":
		spec.EDC = []bool{false}
	case "on":
		spec.EDC = []bool{true}
	case "both":
		spec.EDC = []bool{false, true}
	default:
		fail(fmt.Errorf("smores-fault: -edc must be off, on, or both (got %q)", *edcMode))
	}
	switch *schemes {
	case "default":
		// CampaignSpec default: MTA baseline + exhaustive variable SMOREs.
	case "all":
		spec.Schemes = []report.CampaignScheme{
			{Policy: memctrl.BaselineMTA},
			{Policy: memctrl.OptimizedMTA},
			{Policy: memctrl.SMOREs, Scheme: core.Scheme{Specification: core.VariableCode, Detection: core.Exhaustive}},
			{Policy: memctrl.SMOREs, Scheme: core.Scheme{Specification: core.StaticCode, Detection: core.Exhaustive}},
			{Policy: memctrl.SMOREs, Scheme: core.Scheme{Specification: core.StaticCode, Detection: core.Conservative}},
		}
	default:
		fail(fmt.Errorf("smores-fault: -schemes must be default or all (got %q)", *schemes))
	}
	if *apps > 0 {
		fleet := workload.Fleet()
		n := *apps
		if n > len(fleet) {
			n = len(fleet)
		}
		for i := 0; i < n; i++ {
			spec.Apps = append(spec.Apps, fleet[i*len(fleet)/n])
		}
	}

	cr, err := report.RunCampaign(spec)
	fail(err)
	fmt.Print(report.RenderCampaign(cr))

	if *jsonOut != "" {
		var w io.Writer = os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			fail(err)
			defer f.Close()
			w = f
		}
		fail(report.ExportCampaignJSON(w, cr))
	}

	if *gate {
		bad := 0
		for _, p := range cr.Points {
			if p.EDC && p.Fault.Silent > 0 {
				fmt.Fprintf(os.Stderr, "smores-fault: GATE: %s %s rate=%g edc=on: %d silent corruptions (%d harmless)\n",
					p.Label, p.ModelName, p.Rate, p.Fault.Silent, p.Fault.Harmless)
				bad++
			}
		}
		if bad > 0 {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "smores-fault: gate passed: zero silent corruptions on every EDC-enabled point")
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
