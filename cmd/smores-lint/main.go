// Command smores-lint runs the SMOREs domain analyzer suite over Go
// packages. It is the repository's invariant gate: statsmirror,
// hotpathalloc, nilsafeobs, floateq, and codebookconst each prove one
// property the simulator's numbers rest on (see docs/LINT.md).
//
// Usage:
//
//	smores-lint [flags] [packages]
//
// Packages default to ./... resolved from the current directory. Exit
// status is 0 when the tree is clean, 1 when findings are reported (or
// a finding could not be auto-fixed under -fix), and 2 on usage or load
// errors.
//
// Flags:
//
//	-json   emit findings as a JSON array on stdout instead of text
//	-sarif  emit findings as a SARIF 2.1.0 document on stdout
//	-fix    apply suggested fixes in place (then report what remains)
//	-list   list the registered analyzers and exit
//	-only   comma-separated analyzer names to run (default: all)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"smores/internal/analysis"
	"smores/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("smores-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 document on stdout")
	fix := fs.Bool("fix", false, "apply suggested fixes in place")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: smores-lint [flags] [packages]\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintf(stderr, "smores-lint: -json and -sarif are mutually exclusive\n")
		return 2
	}

	suite := analyzers.All()
	if *only != "" {
		suite = suite[:0:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a := analyzers.ByName(name)
			if a == nil {
				fmt.Fprintf(stderr, "smores-lint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			suite = append(suite, a)
		}
		if len(suite) == 0 {
			fmt.Fprintf(stderr, "smores-lint: -only selected no analyzers\n")
			return 2
		}
	}

	if *list {
		for _, a := range analyzers.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "smores-lint: %v\n", err)
		return 2
	}

	findings, err := analysis.Run(dir, patterns, suite)
	if err != nil {
		fmt.Fprintf(stderr, "smores-lint: %v\n", err)
		return 2
	}

	if *fix && len(findings) > 0 {
		fixedFiles, err := analysis.ApplyFixes(findings)
		if err != nil {
			fmt.Fprintf(stderr, "smores-lint: applying fixes: %v\n", err)
			return 2
		}
		// Re-run so the report reflects the post-fix tree.
		findings, err = analysis.Run(dir, patterns, suite)
		if err != nil {
			fmt.Fprintf(stderr, "smores-lint: reloading after fixes: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "smores-lint: rewrote %d file(s); %d finding(s) remain\n", len(fixedFiles), len(findings))
	}

	switch {
	case *sarifOut:
		// A clean tree still emits a complete document (empty results
		// array) so CI can upload it unconditionally.
		if err := writeSARIF(stdout, dir, suite, findings); err != nil {
			fmt.Fprintf(stderr, "smores-lint: %v\n", err)
			return 2
		}
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "smores-lint: %v\n", err)
			return 2
		}
	default:
		for _, f := range findings {
			suffix := ""
			if f.Fixable {
				suffix = " [fixable]"
			}
			fmt.Fprintf(stdout, "%s: %s: %s%s\n", f.Position, f.Analyzer, f.Message, suffix)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
