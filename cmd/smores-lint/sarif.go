package main

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"

	"smores/internal/analysis"
)

// SARIF 2.1.0 emission, the subset GitHub code scanning consumes: one
// run per invocation, one reporting rule per registered analyzer, one
// result per finding. The driver guarantees findings arrive sorted by
// position, so the document is byte-stable for a given tree — the same
// determinism contract the analyzers themselves enforce.

const (
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders the findings of a run as a SARIF 2.1.0 document.
// Artifact URIs are made relative to root (the lint working directory,
// i.e. the repository checkout in CI) so code-scanning annotations land
// on the right files regardless of the runner's absolute paths.
func writeSARIF(w io.Writer, root string, suite []*analysis.Analyzer, findings []analysis.Finding) error {
	rules := make([]sarifRule, len(suite))
	ruleIndex := make(map[string]int, len(suite))
	for i, a := range suite {
		rules[i] = sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}}
		ruleIndex[a.Name] = i
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.File
		if rel, err := filepath.Rel(root, f.File); err == nil && !filepath.IsAbs(rel) &&
			rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			uri = rel
		}
		idx, ok := ruleIndex[f.Analyzer]
		if !ok {
			// A finding from an analyzer outside the requested suite
			// (defensive: the driver filters these already).
			idx = 0
		}
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}
	doc := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "smores-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
