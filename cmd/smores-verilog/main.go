// Command smores-verilog emits the synthesizable Verilog designs behind
// the paper's Figure 7 — the MTA and SMOREs encoders/decoders, the
// restricted-DBI column unit, and the level shifters — generated from the
// same codebooks the Go library uses and exhaustively verified against
// them by the test suite.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"smores/internal/codec"
	"smores/internal/core"
	"smores/internal/mta"
	"smores/internal/pam4"
	"smores/internal/verilog"
)

func main() {
	var (
		outDir = flag.String("o", "rtl", "output directory for .v files")
		stdout = flag.Bool("stdout", false, "print to stdout instead of writing files")
	)
	flag.Parse()

	m := pam4.DefaultEnergyModel()
	fam, err := core.NewFamily(m, core.DefaultFamilyConfig())
	fail(err)
	var books []*codec.Codebook
	for _, n := range fam.Lengths() {
		books = append(books, fam.ByLength(n).Book())
	}
	mods := verilog.StandardSet(mta.New(m), books)

	if *stdout {
		for _, mod := range mods {
			fmt.Println(mod.Emit())
		}
		return
	}
	fail(os.MkdirAll(*outDir, 0o755))
	for _, mod := range mods {
		path := filepath.Join(*outDir, mod.Name+".v")
		fail(os.WriteFile(path, []byte(mod.Emit()), 0o644))
		fmt.Printf("wrote %s (%d inputs, %d outputs)\n", path, len(mod.Inputs()), len(mod.Outputs()))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "smores-verilog:", err)
		os.Exit(1)
	}
}
