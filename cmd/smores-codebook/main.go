// Command smores-codebook inspects the coding side of the reproduction:
// the electrical model (Figures 1–2), the MTA table (Table I), the
// restricted code spaces (Table III), the per-encoding energies
// (Table IV), the code survey (Figure 6), and raw codebook dumps.
package main

import (
	"flag"
	"fmt"
	"os"

	"smores/internal/core"
	"smores/internal/mta"
	"smores/internal/pam4"
	"smores/internal/report"
)

func main() {
	var (
		fig1   = flag.Bool("fig1", false, "print PAM4 symbol energies (Figure 1)")
		fig2   = flag.Bool("fig2", false, "print the driver network table (Figure 2)")
		mtaTab = flag.Bool("mta", false, "print the MTA 7b→4sym table (Table I)")
		config = flag.Bool("config", false, "print the evaluated system configuration (Table II)")
		space  = flag.Bool("space", false, "print restricted code-space sizes (Table III)")
		table4 = flag.Bool("table4", false, "print per-encoding energies (Table IV)")
		fig6   = flag.Bool("fig6", false, "print the sparse-code survey (Figure 6)")
		dump   = flag.Int("dump", 0, "dump the 4bNs-3 codebook for the given N (3..8)")
		dbi    = flag.Bool("dbi", true, "use DBI for -dump expected energies")
		all    = flag.Bool("all", false, "print everything")
	)
	flag.Parse()
	if !(*fig1 || *fig2 || *mtaTab || *config || *space || *table4 || *fig6 || *all || *dump != 0) {
		*all = true
	}

	m := pam4.DefaultEnergyModel()
	if *all || *fig1 {
		fmt.Println(report.Fig1SymbolEnergy(m))
	}
	if *all || *fig2 {
		fmt.Println(report.Fig2DriverTable(m.Driver()))
	}
	if *all || *mtaTab {
		fmt.Println(report.Table1MTA(mta.New(m)))
	}
	if *all || *config {
		fmt.Println(report.Table2Config())
	}
	if *all || *space {
		out, err := report.Table3CodeSpace()
		fail(err)
		fmt.Println(out)
	}
	if *all || *table4 {
		out, err := report.Table4Energy(m)
		fail(err)
		fmt.Println(out)
	}
	if *all || *fig6 {
		out, err := report.Fig6Survey(m)
		fail(err)
		fmt.Println(out)
	}
	if *dump != 0 {
		fam, err := core.NewFamily(m, core.FamilyConfig{DBI: *dbi, Levels: 3, PaperFaithful: true})
		fail(err)
		sc := fam.ByLength(*dump)
		if sc == nil {
			fail(fmt.Errorf("no 4b%ds-3 codec (valid lengths: 3..8)", *dump))
		}
		book := sc.Book()
		fmt.Printf("%s codebook (strategy %s, expected %.1f fJ/bit incl. DBI wire)\n",
			sc.Name(), book.Spec().Strategy, sc.ExpectedPerBit())
		for v, seq := range book.Codes() {
			fmt.Printf("  %2d (%04b) → %-8s %7.1f fJ\n", v, v, seq, m.SeqEnergy(seq))
		}
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "smores-codebook:", err)
		os.Exit(1)
	}
}
