// Command smores-eval regenerates the paper's evaluation: the idle-gap
// profile (Figure 5), the per-application energy comparisons (Figures
// 8a/8b), the scheme-comparison savings (Table V), the performance-impact
// analysis, and the total-DRAM-power contextualization.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"smores/internal/obs"
	"smores/internal/pam4"
	"smores/internal/report"
	"smores/internal/sweep"
	"smores/internal/tracestore"
	"smores/internal/workload"
)

func main() {
	var (
		fig5     = flag.Bool("fig5", false, "print the idle-gap distributions (Figure 5)")
		fig8a    = flag.Bool("fig8a", false, "print energy vs MTA+postamble per app (Figure 8a)")
		fig8b    = flag.Bool("fig8b", false, "print energy vs optimized MTA per app (Figure 8b)")
		table5   = flag.Bool("table5", false, "print the scheme comparison (Table V)")
		perf     = flag.Bool("perf", false, "print the performance impact")
		power    = flag.Bool("power", false, "print the total-DRAM-power context")
		wfall    = flag.Bool("waterfall", false, "print the energy-savings waterfall with the profiler's phase decomposition")
		all      = flag.Bool("all", false, "print everything")
		sweeps   = flag.Bool("sweep", false, "run the window/latency sensitivity sweeps instead")
		csvDir   = flag.String("csv", "", "also write machine-readable CSV/JSON artifacts to this directory")
		jsonOut  = flag.String("json", "", "write the full machine-readable evaluation (per-app rows, per-worker counters) to this file ('-' for stdout)")
		accesses = flag.Int64("accesses", report.DefaultAccesses, "per-app workload length")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		workers  = flag.Int("j", 0, "concurrent app simulations per fleet (0 = GOMAXPROCS, 1 = sequential)")
		channels = flag.Int("channels", 1, "interleaved GDDR6X channels per app; >1 switches to the sharded multi-channel evaluation")
		listen   = flag.String("listen", "", "serve live telemetry (/metrics, /healthz, /progress with ETA, pprof) on this address for the duration of the run")
		traces   = flag.String("trace", "", "comma-separated trace-store directories (smores-trace -pack/-import) evaluated as additional fleet members")
	)
	flag.Parse()
	fleet := workload.Fleet()
	if *traces != "" {
		for _, dir := range strings.Split(*traces, ",") {
			p, err := tracestore.RegisterFleetMember(strings.TrimSpace(dir))
			fail(err)
			fleet = append(fleet, p)
			fmt.Fprintf(os.Stderr, "smores-eval: registered trace store %s as fleet member %q\n", dir, p.Name)
		}
	}
	if *sweeps {
		cfg := sweep.Config{Accesses: *accesses / 4, Seed: *seed}
		if cfg.Accesses < 500 {
			cfg.Accesses = 500
		}
		pts, err := sweep.ConservativeWindow(cfg, []int{2, 3, 4, 6, 8, 12, 16})
		fail(err)
		fmt.Println(sweep.Render("Conservative detection-window sweep (paper fixes 8 clocks)", "clocks", pts))
		pts, err = sweep.ReadLatency(cfg, []int64{20, 25, 30, 35, 40})
		fail(err)
		fmt.Println(sweep.Render("Read-latency sensitivity (exhaustive/static)", "RL clocks", pts))
		return
	}
	if *channels > 1 {
		runMultiChannel(fleet, *channels, *accesses, *seed, *workers, *listen, *jsonOut)
		return
	}
	if !(*fig5 || *fig8a || *fig8b || *table5 || *perf || *power || *wfall) {
		*all = true
	}

	specs := report.PolicySpecs(*accesses, *seed, false)
	labels := []string{"baseline", "optimized", "variable", "static", "conservative"}

	// Energy attribution for the waterfall's phase decomposition: the
	// profiler rides the variable-SMOREs fleet (specs[2]) so its cells
	// reconcile with exactly that fleet's bus totals.
	prof := obs.NewProfile()
	specs[2].Profile = prof

	// Live telemetry: per-app counters for the whole stack plus a
	// /progress endpoint whose ETA covers all fleets. A registry is also
	// needed (without the server) for -json's per-worker counters.
	opts := report.FleetOptions{Workers: *workers}
	var srv *obs.Server
	if *listen != "" {
		opts.Obs = obs.NewRegistry()
		opts.Progress = obs.NewProgress(int64(len(specs) * len(fleet)))
		srv = obs.NewServer(opts.Obs, opts.Progress)
		srv.AttachProfile(prof)
		addr, err := srv.Start(*listen)
		fail(err)
		fmt.Fprintf(os.Stderr, "smores-eval: telemetry on http://%s/metrics (energy attribution at /profile)\n", addr)
		defer srv.Close()
	} else if *jsonOut != "" {
		opts.Obs = obs.NewRegistry()
	}

	frs := make([]report.FleetResult, len(specs))
	for i, s := range specs {
		fmt.Fprintf(os.Stderr, "running fleet under %s...\n", labels[i])
		opts.Progress.SetPhase("fleet: " + labels[i])
		fr, err := report.RunFleetApps(fleet, s, opts)
		fail(err)
		frs[i] = fr
	}
	base, opt, variable, static, cons := frs[0], frs[1], frs[2], frs[3], frs[4]

	if *all || *fig5 {
		fmt.Println(report.Fig5Gaps(base))
	}
	if *all || *fig8a {
		fmt.Println(report.Fig8Energy(base, []report.FleetResult{variable, static},
			"Figure 8a — per-bit energy normalized to MTA+postamble"))
	}
	if *all || *fig8a {
		fmt.Println(report.SuiteSummary(base, []report.FleetResult{variable, static, cons}))
	}
	if *all || *fig8b {
		fmt.Println(report.Fig8Energy(opt, []report.FleetResult{variable, static},
			"Figure 8b — per-bit energy normalized to optimized MTA (no postamble energy)"))
	}
	if *all || *table5 {
		fmt.Println(report.Table5(base, variable, static, cons))
	}
	if *all || *perf {
		fmt.Println(report.PerfTable(base, []report.FleetResult{variable, static, cons}))
	}
	if *all || *power {
		fmt.Println(report.TotalPowerContext(base, variable))
	}
	if *all || *wfall {
		fail(report.ReconcileProfile(prof, variable))
		w, err := report.BuildWaterfall(base, opt, variable, prof)
		fail(err)
		fmt.Println(report.RenderWaterfall(w))
	}
	if *jsonOut != "" {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			fail(err)
			defer f.Close()
			out = f
		}
		fail(report.ExportEvalJSON(out, frs, opts.Obs))
		if *jsonOut != "-" {
			fmt.Fprintf(os.Stderr, "wrote evaluation JSON to %s\n", *jsonOut)
		}
	}
	if *csvDir != "" {
		fail(os.MkdirAll(*csvDir, 0o755))
		for i, fr := range frs {
			f, err := os.Create(filepath.Join(*csvDir, "fleet_"+labels[i]+".csv"))
			fail(err)
			fail(report.ExportFleetCSV(f, fr))
			fail(f.Close())
		}
		f, err := os.Create(filepath.Join(*csvDir, "gaps_baseline.csv"))
		fail(err)
		fail(report.ExportGapsCSV(f, base))
		fail(f.Close())
		f, err = os.Create(filepath.Join(*csvDir, "table4.json"))
		fail(err)
		fail(report.ExportTable4JSON(f, pam4.DefaultEnergyModel()))
		fail(f.Close())
		fmt.Fprintf(os.Stderr, "wrote CSV/JSON artifacts to %s\n", *csvDir)
	}
}

// runMultiChannel is the `-channels N` evaluation: every policy's fleet
// runs through the shard-per-goroutine engine, where -j bounds the
// worker pool packing all apps × channels shard simulations. For a
// fixed seed the summary and the -json export are byte-identical at
// every -j (the report package's differential tests enforce it).
func runMultiChannel(fleet []workload.Profile, channels int, accesses int64, seed uint64, workers int, listen, jsonOut string) {
	specs := report.PolicySpecs(accesses, seed, false)
	labels := []string{"baseline", "optimized", "variable", "static", "conservative"}

	// Energy attribution rides the variable-SMOREs fleet (specs[2]),
	// mirroring the single-channel evaluation: each shard profiles
	// privately and the merge folds the cells in channel order.
	prof := obs.NewProfile()
	specs[2].Profile = prof

	opts := report.ShardOptions{Workers: workers}
	var srv *obs.Server
	if listen != "" {
		opts.Obs = obs.NewRegistry()
		opts.Progress = obs.NewProgress(int64(len(specs) * len(fleet) * channels))
		srv = obs.NewServer(opts.Obs, opts.Progress)
		srv.AttachProfile(prof)
		addr, err := srv.Start(listen)
		fail(err)
		fmt.Fprintf(os.Stderr, "smores-eval: telemetry on http://%s/metrics (energy attribution at /profile)\n", addr)
		defer srv.Close()
	}

	mfrs := make([]report.MultiFleetResult, len(specs))
	for i, s := range specs {
		fmt.Fprintf(os.Stderr, "running %d-channel fleet under %s...\n", channels, labels[i])
		opts.Progress.SetPhase("fleet: " + labels[i])
		fr, err := report.RunFleetAppsMultiChannel(fleet, s, channels, opts)
		fail(err)
		mfrs[i] = fr
	}
	fmt.Println(report.RenderMultiChannelSummary(mfrs))

	if jsonOut != "" {
		out := os.Stdout
		if jsonOut != "-" {
			f, err := os.Create(jsonOut)
			fail(err)
			defer f.Close()
			out = f
		}
		fail(report.ExportMultiEvalJSON(out, mfrs))
		if jsonOut != "-" {
			fmt.Fprintf(os.Stderr, "wrote multi-channel evaluation JSON to %s\n", jsonOut)
		}
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "smores-eval:", err)
		os.Exit(1)
	}
}
