// Command smores-serve is the long-running telemetry service: it hosts
// the session registry over HTTP — POST run specs to /sessions, scrape
// or stream each session while it runs, and read the fleet-wide roll-up
// at /fleet/metrics. Simulations execute on a bounded worker pool;
// telemetry is sampled into per-session delta streams and can never
// block a simulation tick (a slow consumer costs counted snapshot
// drops, nothing else).
//
//	smores-serve -listen :9137                  # serve until SIGINT
//	smores-serve -smoke -out fleet-rollup.json  # self-test and exit
//
// The -smoke mode is the CI gate: it binds an ephemeral port, submits a
// few sessions over real HTTP, verifies every NDJSON stream reconciles
// exactly with the session's final state, verifies the fleet roll-up
// conserves the per-session totals, writes the roll-up JSON to -out,
// and exits non-zero on any violation.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"smores/internal/floats"
	"smores/internal/obs"
	"smores/internal/obs/fedclient"
	"smores/internal/obs/session"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:9137", "listen address (use :0 for an ephemeral port)")
		workers   = flag.Int("session-workers", 0, "concurrently running sessions (0 = GOMAXPROCS)")
		sample    = flag.Duration("sample-interval", session.DefaultSampleInterval, "delta emission period per session")
		ringCap   = flag.Int("ring", session.DefaultRingCapacity, "per-session snapshot buffer capacity")
		queue     = flag.Int("queue", session.DefaultQueueDepth, "accepted-but-not-running session bound")
		retain    = flag.Int("retain", 0, "finished sessions kept individually addressable (0 = all; older ones fold into the retired roll-up)")
		retainTTL = flag.Duration("retain-ttl", 0, "additionally retire finished sessions older than this (0 = no age limit)")
		drain     = flag.Duration("drain", obs.DefaultDrainTimeout, "graceful shutdown deadline")
		smoke     = flag.Bool("smoke", false, "run the self-test against an ephemeral instance and exit")
		smokeN    = flag.Int("smoke-sessions", 3, "sessions the self-test submits")
		out       = flag.String("out", "", "smoke mode: write the fleet roll-up JSON here ('-' for stdout)")

		federate    = flag.String("federate", "", "comma-separated peer base URLs to scrape into /federation/* (with -smoke: run the two-instance federation self-test)")
		fedInterval = flag.Duration("federate-interval", 2*time.Second, "federation scrape period")
		fedTimeout  = flag.Duration("federate-timeout", 5*time.Second, "per-peer federation scrape timeout")
		fedSelf     = flag.Bool("federate-self", true, "include this instance's own fleet in the federated roll-up")
	)
	flag.Parse()

	if *smoke && *federate != "" {
		err := runFederateSmoke(*smokeN, *fedInterval, *fedTimeout, *out)
		fail(err)
		fmt.Fprintln(os.Stderr, "smores-serve: federate smoke OK")
		return
	}

	g := session.NewRegistry(session.Options{
		Workers:        *workers,
		SampleInterval: *sample,
		RingCapacity:   *ringCap,
		QueueDepth:     *queue,
		RetainFinished: *retain,
		RetainTTL:      *retainTTL,
	})
	svc := session.NewService(g)
	srv := obs.NewServer(g.Obs(), nil)
	srv.SetDrainTimeout(*drain)
	svc.Attach(srv)

	addr := *listen
	if *smoke {
		addr = "127.0.0.1:0"
	}
	bound, err := srv.Start(addr)
	fail(err)

	if *smoke {
		err := runSmoke("http://"+bound, *smokeN, *out)
		srv.Close()
		g.Drain()
		fail(err)
		fmt.Fprintln(os.Stderr, "smores-serve: smoke OK")
		return
	}

	var fed *fedclient.Client
	if *federate != "" {
		peers := strings.Split(*federate, ",")
		if *fedSelf {
			peers = append([]string{"http://" + bound}, peers...)
		}
		fed = fedclient.New(peers, g.Obs(), fedclient.Options{
			Interval: *fedInterval,
			Timeout:  *fedTimeout,
		})
		svc.AttachFederation(fed)
		fed.Start()
		fmt.Fprintf(os.Stderr, "smores-serve: federating %s every %s\n",
			strings.Join(fed.Peers(), ", "), *fedInterval)
	}

	fmt.Fprintf(os.Stderr, "smores-serve: listening on http://%s (POST /sessions to submit)\n", bound)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "smores-serve: draining")
	fed.Stop()
	fail(srv.Close())
	g.Drain()
}

// smokeSpecs are the self-test's session mix: one per encoding policy,
// small enough to finish in seconds.
var smokeSpecs = []string{
	`{"accesses": 2000, "max_apps": 2, "seed": 101}`,
	`{"accesses": 2000, "max_apps": 2, "seed": 102, "policy": "optimized-mta"}`,
	`{"accesses": 2000, "max_apps": 2, "seed": 103, "policy": "smores"}`,
}

// runSmoke is the end-to-end self-test over real HTTP.
func runSmoke(base string, n int, out string) error {
	client := &http.Client{Timeout: 5 * time.Minute}

	// Submit n sessions (cycling the spec mix) and follow every stream.
	type followed struct {
		id    string
		state *obs.StreamState
		errc  chan error
	}
	var follows []followed
	for i := 0; i < n; i++ {
		spec := smokeSpecs[i%len(smokeSpecs)]
		resp, err := client.Post(base+"/sessions", "application/json", strings.NewReader(spec))
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("POST /sessions = %d: %s", resp.StatusCode, body)
		}
		var info struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &info); err != nil || info.ID == "" {
			return fmt.Errorf("submit response: %v (%s)", err, body)
		}
		f := followed{id: info.ID, state: obs.NewStreamState(), errc: make(chan error, 1)}
		go func() { f.errc <- follow(client, base, f.id, f.state) }()
		follows = append(follows, f)
	}

	for _, f := range follows {
		if err := <-f.errc; err != nil {
			return fmt.Errorf("stream %s: %w", f.id, err)
		}
	}

	// Reconciliation: each reconstruction must equal the session's final
	// state — served independently by a late-join stream, which is by
	// contract a single full Reset snapshot of the finished session.
	sums := map[string]sumEntry{}
	for _, f := range follows {
		final := obs.NewStreamState()
		if err := follow(client, base, f.id, final); err != nil {
			return fmt.Errorf("late join %s: %w", f.id, err)
		}
		if !obs.EqualPoints(f.state.Points(), final.Points()) {
			return fmt.Errorf("session %s: stream reconstruction (%d points) != final state (%d points)",
				f.id, len(f.state.Points()), len(final.Points()))
		}
		if len(final.Points()) == 0 {
			return fmt.Errorf("session %s: empty final state", f.id)
		}
		for _, p := range final.Points() {
			k := pointKey(p)
			e := sums[k]
			e.point = p
			e.sum += p.Value
			sums[k] = e
		}
	}

	// Conservation: the fleet roll-up must carry exactly the summed
	// per-session values for every non-histogram counter/gauge series.
	// (Float sums may differ in the last ulp from the roll-up's ordered
	// merge only if sessions merged in a different order — the roll-up
	// merges in submission order, which is the order we summed in.)
	rollup, err := fleetJSON(client, base)
	if err != nil {
		return err
	}
	checked := 0
	for _, fam := range rollup {
		if fam.Kind == "histogram" {
			continue
		}
		for _, s := range fam.Series {
			if s.Value == nil {
				continue
			}
			k := pointKey(obs.DeltaPoint{Name: fam.Name, Labels: s.Labels})
			want, ok := sums[k]
			if !ok {
				continue // service-level families appear in per-session scrapes only via deltas
			}
			if !floats.Eq(*s.Value, want.sum) {
				return fmt.Errorf("fleet %s%v = %v, per-session sum %v — roll-up does not conserve",
					fam.Name, s.Labels, *s.Value, want.sum)
			}
			checked++
		}
	}
	if checked == 0 {
		return fmt.Errorf("no fleet series reconciled")
	}
	fmt.Fprintf(os.Stderr, "smores-serve: %d sessions streamed, %d fleet series conserved\n",
		len(follows), checked)

	if out == "" {
		return nil
	}
	raw, err := getBody(client, base+"/fleet/metrics.json")
	if err != nil {
		return err
	}
	if out == "-" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "smores-serve: wrote %s\n", out)
	return nil
}

// runFederateSmoke is the two-instance federation self-test: it starts
// two in-process service instances on ephemeral ports (each with a tiny
// retention cap, so the retired accumulator is on the scraped path),
// runs sessions on both, federates them through a client mounted on the
// first instance, and verifies over real HTTP that the federated
// roll-up is byte-identical to fetching the two peers' fleet documents
// and merging them in peer order — exact conservation, not approximate.
// Any violation exits non-zero.
func runFederateSmoke(n int, interval, timeout time.Duration, out string) error {
	client := &http.Client{Timeout: 5 * time.Minute}

	type instance struct {
		g    *session.Registry
		svc  *session.Service
		srv  *obs.Server
		base string
	}
	var insts []*instance
	defer func() {
		for _, in := range insts {
			in.srv.Close()
			in.g.Drain()
		}
	}()
	for i := 0; i < 2; i++ {
		g := session.NewRegistry(session.Options{
			SampleInterval: 5 * time.Millisecond,
			RetainFinished: 1,
		})
		svc := session.NewService(g)
		srv := obs.NewServer(g.Obs(), nil)
		svc.Attach(srv)
		bound, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return err
		}
		insts = append(insts, &instance{g: g, svc: svc, srv: srv, base: "http://" + bound})
	}

	// Run n sessions on each instance with distinct seeds, so the peers
	// hold genuinely different fleets; follow every stream to its final.
	policies := []string{"", "optimized-mta", "smores"}
	for ii, in := range insts {
		for i := 0; i < n; i++ {
			pol := ""
			if p := policies[i%len(policies)]; p != "" {
				pol = fmt.Sprintf(`, "policy": %q`, p)
			}
			body := fmt.Sprintf(`{"accesses": 2000, "max_apps": 2, "seed": %d%s}`, 200+ii*50+i, pol)
			resp, err := client.Post(in.base+"/sessions", "application/json", strings.NewReader(body))
			if err != nil {
				return err
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				return fmt.Errorf("POST %s/sessions = %d: %s", in.base, resp.StatusCode, raw)
			}
			var info struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(raw, &info); err != nil || info.ID == "" {
				return fmt.Errorf("submit response: %v (%s)", err, raw)
			}
			if err := follow(client, in.base, info.ID, obs.NewStreamState()); err != nil {
				return fmt.Errorf("stream %s on %s: %w", info.ID, in.base, err)
			}
		}
	}

	// Federate: the first instance scrapes itself and its peer.
	fed := fedclient.New([]string{insts[0].base, insts[1].base}, insts[0].g.Obs(), fedclient.Options{
		Interval: interval,
		Timeout:  timeout,
	})
	insts[0].svc.AttachFederation(fed)
	if err := fed.ScrapeNow(); err != nil {
		return fmt.Errorf("federation scrape: %w", err)
	}

	// The federated roll-up must equal, byte for byte, parsing each
	// peer's fleet documents and merging them in peer order — the same
	// operations the client performed, so equality is exact.
	gotMetrics, err := getBody(client, insts[0].base+"/federation/metrics.json")
	if err != nil {
		return err
	}
	wantReg := obs.NewRegistry()
	wantProf := obs.NewProfile()
	for _, in := range insts {
		raw, err := getBody(client, in.base+"/fleet/metrics.json")
		if err != nil {
			return err
		}
		reg, err := obs.ParseRegistryJSON(strings.NewReader(string(raw)))
		if err != nil {
			return fmt.Errorf("parse %s fleet: %w", in.base, err)
		}
		if err := wantReg.Merge(reg); err != nil {
			return err
		}
		raw, err = getBody(client, in.base+"/fleet/profile?format=json")
		if err != nil {
			return err
		}
		prof, err := obs.ParseProfileJSON(strings.NewReader(string(raw)))
		if err != nil {
			return fmt.Errorf("parse %s profile: %w", in.base, err)
		}
		wantProf.Merge(prof)
	}
	var wantMetrics strings.Builder
	if err := obs.WriteJSON(&wantMetrics, wantReg); err != nil {
		return err
	}
	if string(gotMetrics) != wantMetrics.String() {
		return fmt.Errorf("federated metrics != ordered sum of per-peer fleets\ngot  %.400s\nwant %.400s",
			gotMetrics, wantMetrics.String())
	}
	if len(wantReg.Gather()) == 0 {
		return fmt.Errorf("federated roll-up is empty")
	}

	gotProfile, err := getBody(client, insts[0].base+"/federation/profile?format=json")
	if err != nil {
		return err
	}
	var wantProfile strings.Builder
	if err := obs.WriteProfileJSON(&wantProfile, wantProf.Snapshot()); err != nil {
		return err
	}
	if string(gotProfile) != wantProfile.String() {
		return fmt.Errorf("federated profile != ordered sum of per-peer profiles")
	}

	// Per-peer attribution: both peers listed, healthy, scraped.
	rawPeers, err := getBody(client, insts[0].base+"/federation/peers")
	if err != nil {
		return err
	}
	var peers []fedclient.PeerStatus
	if err := json.Unmarshal(rawPeers, &peers); err != nil {
		return fmt.Errorf("peers JSON: %w", err)
	}
	if len(peers) != 2 {
		return fmt.Errorf("federation lists %d peers, want 2", len(peers))
	}
	for _, p := range peers {
		if !p.Healthy || p.Scrapes == 0 {
			return fmt.Errorf("peer %s unhealthy after successful scrape: %+v", p.URL, p)
		}
	}
	// And the host's own /metrics carries the federation counters.
	rawSvc, err := getBody(client, insts[0].base+"/metrics")
	if err != nil {
		return err
	}
	if !strings.Contains(string(rawSvc), "smores_federation_scrapes_total") {
		return fmt.Errorf("host /metrics missing federation counters")
	}

	fmt.Fprintf(os.Stderr, "smores-serve: federated %d peers, %d families conserved byte-for-byte\n",
		len(peers), len(wantReg.Gather()))

	if out == "" {
		return nil
	}
	if out == "-" {
		_, err = os.Stdout.Write(gotMetrics)
		return err
	}
	if err := os.WriteFile(out, gotMetrics, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "smores-serve: wrote %s\n", out)
	return nil
}

type sumEntry struct {
	point obs.DeltaPoint
	sum   float64
}

// pointKey renders a stable identity for a (name, labels) pair.
func pointKey(p obs.DeltaPoint) string {
	b, _ := json.Marshal(p.Labels)
	return p.Name + " " + string(b)
}

// follow consumes one session's NDJSON stream into state until the
// final snapshot.
func follow(client *http.Client, base, id string, state *obs.StreamState) error {
	resp, err := client.Get(base + "/sessions/" + id + "/stream")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stream = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var snap obs.DeltaSnapshot
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			return err
		}
		if !state.Apply(snap) {
			return fmt.Errorf("sequence gap: snapshot %d after %d", snap.Seq, state.Seq())
		}
		if snap.Final {
			return nil
		}
	}
	return fmt.Errorf("stream ended without a final snapshot: %v", sc.Err())
}

type fleetFamily struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	Series []struct {
		Labels map[string]string `json:"labels"`
		Value  *float64          `json:"value"`
	} `json:"series"`
}

func fleetJSON(client *http.Client, base string) ([]fleetFamily, error) {
	raw, err := getBody(client, base+"/fleet/metrics.json")
	if err != nil {
		return nil, err
	}
	var fams []fleetFamily
	if err := json.Unmarshal(raw, &fams); err != nil {
		return nil, fmt.Errorf("fleet JSON: %w", err)
	}
	return fams, nil
}

func getBody(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s = %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "smores-serve:", err)
		os.Exit(1)
	}
}
