// Command smores-sim runs one workload end to end through the GPU
// memory-system simulator under a chosen encoding policy, printing
// energy, gap, and performance statistics. With -scenario it instead
// plays the paper's Figure 4 timing scenarios through the channel model.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"smores/internal/bus"
	"smores/internal/core"
	"smores/internal/dbi"
	"smores/internal/eyesim"
	"smores/internal/memctrl"
	"smores/internal/mta"
	"smores/internal/obs"
	"smores/internal/pam4"
	"smores/internal/report"
	"smores/internal/rng"
	"smores/internal/workload"
)

func main() {
	var (
		app       = flag.String("app", "bfs", "workload name (see -list)")
		list      = flag.Bool("list", false, "list the 42 workloads and exit")
		policy    = flag.String("policy", "smores", "baseline | optimized | smores")
		spec      = flag.String("spec", "static", "static | variable (SMOREs code specification)")
		detect    = flag.String("detect", "exhaustive", "exhaustive | conservative (gap detection)")
		accesses  = flag.Int64("accesses", report.DefaultAccesses, "workload length in accesses")
		seed      = flag.Uint64("seed", 1, "deterministic seed")
		useLLC    = flag.Bool("llc", false, "interpose the 6MB sectored LLC")
		scenario  = flag.Bool("scenario", false, "play the Figure 4 timing scenarios instead")
		eye       = flag.Bool("eye", false, "run the signal-integrity (crosstalk/eye) analysis instead")
		channels  = flag.Int("channels", 1, "number of interleaved GDDR6X channels")
		sharded   = flag.Bool("sharded", false, "with -channels >1: use the shard-per-goroutine engine instead of the lockstep interleaver")
		shardJ    = flag.Int("j", 0, "with -sharded: concurrent shard simulations (0 = GOMAXPROCS, 1 = sequential)")
		listen    = flag.String("listen", "", "serve live telemetry (/metrics, /healthz, /progress, pprof) on this address; keeps serving after the run until interrupted")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON (load in Perfetto) to this file")
		traceCap  = flag.Int("trace-depth", obs.DefaultTraceCapacity, "ring-buffer capacity of the tracer (most recent events kept)")
		foldedOut = flag.String("folded", "", "write the energy-attribution profile as folded stacks (flamegraph.pl input) to this file")
	)
	flag.Parse()

	if *list {
		for _, p := range workload.Fleet() {
			fmt.Printf("%-16s %-10s burst=%.0f think=%.0f writes=%.0f%%\n",
				p.Name, p.Suite, p.BurstLen, p.ThinkMean, p.WriteFrac*100)
		}
		return
	}
	if *scenario {
		playScenarios()
		return
	}
	if *eye {
		analyzeEye()
		return
	}

	p, ok := workload.ByName(*app)
	if !ok {
		fail(fmt.Errorf("unknown app %q (try -list)", *app))
	}
	rs := report.RunSpec{Accesses: *accesses, Seed: *seed, UseLLC: *useLLC}

	// Observability: a live registry + progress when -listen is set, a
	// cycle tracer when -trace is set. Both are nil otherwise, which keeps
	// the simulator's hot path on its uninstrumented branch.
	var (
		reg  *obs.Registry
		prog *obs.Progress
		srv  *obs.Server
		prof *obs.Profile
	)
	if *listen != "" || *foldedOut != "" {
		// The energy-attribution profiler feeds the /profile endpoint and
		// the folded-stack flamegraph export.
		prof = obs.NewProfile()
		rs.Profile = prof
	}
	if *listen != "" {
		reg = obs.NewRegistry()
		prog = obs.NewProgress(1)
		prog.SetPhase("run: " + p.Name)
		srv = obs.NewServer(reg, prog)
		srv.AttachProfile(prof)
		addr, err := srv.Start(*listen)
		fail(err)
		fmt.Fprintf(os.Stderr, "smores-sim: telemetry on http://%s/metrics (energy attribution at http://%s/profile)\n", addr, addr)
		rs.Obs = reg
		rs.ObsLabels = []obs.Label{obs.L("app", p.Name)}
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(*traceCap)
		rs.Tracer = tracer
	}
	switch strings.ToLower(*policy) {
	case "baseline":
		rs.Policy = memctrl.BaselineMTA
	case "optimized":
		rs.Policy = memctrl.OptimizedMTA
	case "smores":
		rs.Policy = memctrl.SMOREs
		switch strings.ToLower(*spec) {
		case "static":
			rs.Scheme.Specification = core.StaticCode
		case "variable":
			rs.Scheme.Specification = core.VariableCode
		default:
			fail(fmt.Errorf("unknown -spec %q", *spec))
		}
		switch strings.ToLower(*detect) {
		case "exhaustive":
			rs.Scheme.Detection = core.Exhaustive
		case "conservative":
			rs.Scheme.Detection = core.Conservative
		default:
			fail(fmt.Errorf("unknown -detect %q", *detect))
		}
	default:
		fail(fmt.Errorf("unknown -policy %q", *policy))
	}

	if *channels > 1 {
		var (
			mr  report.MultiResult
			err error
		)
		if *sharded {
			mr, err = report.RunAppMultiChannelSharded(p, rs, *channels,
				report.ShardOptions{Workers: *shardJ, Obs: reg, Progress: prog})
		} else {
			mr, err = report.RunAppMultiChannel(p, rs, *channels)
		}
		fail(err)
		engine := "lockstep"
		if mr.Sharded {
			engine = "sharded"
		}
		fmt.Printf("%s under %s over %d channels (%s engine)\n", p.Name, mr.Label, mr.Channels, engine)
		fmt.Printf("  DRAM traffic:    %d reads, %d writes over %d clocks (%.2f B/clock)\n",
			mr.Reads, mr.Writes, mr.Clocks, float64(mr.Reads+mr.Writes)*32/float64(mr.Clocks))
		fmt.Printf("  energy:          %.1f fJ/bit aggregate\n", mr.PerBit)
		fmt.Printf("  channel balance: %.3f (max/min bits)\n", mr.ChannelBalance())
		finishTelemetry(tracer, *traceOut, prof, *foldedOut, prog, srv)
		return
	}

	r, err := report.RunApp(p, rs)
	fail(err)
	fmt.Printf("%s under %s\n", p.Name, r.Label)
	fmt.Printf("  DRAM traffic:    %d reads, %d writes over %d clocks (%.2f B/clock)\n",
		r.Reads, r.Writes, r.Clocks, float64(r.Reads+r.Writes)*32/float64(r.Clocks))
	fmt.Printf("  energy:          %.1f fJ/bit (wire %.1f + postamble %.1f + logic %.1f)\n",
		r.PerBit,
		r.Bus.WireEnergy/r.Bus.DataBits,
		r.Bus.PostambleEnergy/r.Bus.DataBits,
		r.Bus.LogicEnergy/r.Bus.DataBits)
	fmt.Printf("  bursts:          %d MTA, %d sparse, %d postambles\n",
		r.Bus.MTABursts, r.Bus.SparseBursts, r.Bus.Postambles)
	fmt.Printf("  read gaps:       %v\n", r.ReadGaps)
	fmt.Printf("  write gaps:      %v\n", r.WriteGaps)
	fmt.Printf("  read latency:    %.1f clocks average\n", r.AvgReadLatency)
	fmt.Printf("  idle frequency:  %.2f\n", r.IdleFrequency)
	finishTelemetry(tracer, *traceOut, prof, *foldedOut, prog, srv)
}

// finishTelemetry writes the Chrome trace (when tracing) and the folded
// energy-attribution stacks (when profiling), marks progress complete,
// and — when a telemetry server is up — keeps serving /metrics until
// interrupted so the final counters stay scrapeable.
func finishTelemetry(tracer *obs.Tracer, traceOut string, prof *obs.Profile, foldedOut string, prog *obs.Progress, srv *obs.Server) {
	if tracer != nil {
		f, err := os.Create(traceOut)
		fail(err)
		fail(tracer.WriteChromeTrace(f))
		fail(f.Close())
		fmt.Fprintf(os.Stderr, "smores-sim: wrote %d trace events to %s (%d dropped by ring)\n",
			tracer.Len(), traceOut, tracer.Dropped())
	}
	if prof != nil && foldedOut != "" {
		f, err := os.Create(foldedOut)
		fail(err)
		fail(obs.WriteProfileFolded(f, prof.Snapshot()))
		fail(f.Close())
		fmt.Fprintf(os.Stderr, "smores-sim: wrote folded energy stacks to %s (flamegraph.pl %s > energy.svg)\n",
			foldedOut, foldedOut)
	}
	if srv == nil {
		return
	}
	prog.Step(1)
	prog.SetPhase("done")
	fmt.Fprintf(os.Stderr, "smores-sim: run complete; serving telemetry on http://%s/metrics until interrupted\n", srv.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fail(srv.Close())
}

// playScenarios drives the channel model through the paper's Figure 4
// cases: (a) back-to-back reads, (b) a two-clock gap with postamble,
// (c) a gap exploited by a 4b4s code, (d) a one-clock gap exploited by
// the preferred 4b3s code.
func playScenarios() {
	r := rng.New(7)
	run := func(title string, f func(ch *bus.Channel, data []byte)) {
		ch := bus.New(bus.Config{ExactData: true})
		data := make([]byte, bus.BurstBytes)
		r.Fill(data)
		f(ch, data)
		st := ch.Stats()
		fmt.Printf("%-52s busy %2d UIs, %.1f fJ/bit, %d violations\n",
			title, st.BusyUIs, st.PerBit(), st.Violations)
	}
	run("Fig4a: two back-to-back MTA reads", func(ch *bus.Channel, data []byte) {
		must(ch.SendBurst(data, 0))
		must(ch.SendBurst(data, 0))
	})
	run("Fig4b: MTA read, 2-clock gap (postamble), MTA read", func(ch *bus.Channel, data []byte) {
		must(ch.SendBurst(data, 0))
		ch.Postamble()
		ch.Idle(4)
		must(ch.SendBurst(data, 0))
	})
	run("Fig4c: read stretched to 4b4s across a 2-clock gap", func(ch *bus.Channel, data []byte) {
		must(ch.SendBurst(data, 4))
		must(ch.SendBurst(data, 0))
	})
	run("Fig4d: read stretched to 4b3s across a 1-clock gap", func(ch *bus.Channel, data []byte) {
		must(ch.SendBurst(data, 3))
		must(ch.SendBurst(data, 0))
	})
}

// analyzeEye runs the first-order signal-integrity comparison behind the
// paper's §II motivation: worst-case victim eye under unconstrained PAM4
// versus MTA versus the 4b3s sparse code.
func analyzeEye() {
	a, err := eyesim.New(eyesim.DefaultConfig())
	fail(err)
	r := rng.New(11)
	m := pam4.DefaultEnergyModel()

	mk := func(name string, cols []mta.Column) {
		rep := a.Analyze(mta.IdleGroupState(), cols)
		fmt.Printf("%-12s max swing %dΔV | worst eye %6.1f mV | mean eye %6.1f mV | mean switch %5.1f mA\n",
			name, rep.MaxSwingDV, rep.WorstEyeMV, rep.MeanEyeMV, rep.MeanSwitchMA)
	}

	// Unconstrained PAM4.
	raw := dbi.NewPAM4Codec(false, m)
	data := make([]byte, 2*4000)
	r.Fill(data)
	rawCols, err := raw.EncodeGroupBurst(data)
	fail(err)
	mk("raw PAM4", rawCols)

	// MTA.
	mc := mta.New(m)
	st := mta.IdleGroupState()
	var mtaCols []mta.Column
	for i := 0; i < 1000; i++ {
		var beatData [mta.GroupDataWires]byte
		r.Fill(beatData[:])
		cols := mc.EncodeGroupBeat(beatData, &st).Columns()
		mtaCols = append(mtaCols, cols[:]...)
	}
	mk("MTA", mtaCols)

	// Sparse 4b3s.
	fam := core.DefaultFamily()
	st = mta.IdleGroupState()
	var spCols []mta.Column
	for i := 0; i < 500; i++ {
		chunk := make([]byte, 16)
		r.Fill(chunk)
		cols, err := fam.ByLength(3).EncodeGroupBurst(chunk, &st)
		fail(err)
		spCols = append(spCols, cols...)
	}
	mk("4b3s-3/DBI", spCols)

	fmt.Printf("\nclosed-form worst-case eye: 2ΔV cap %.1f mV vs 3ΔV %.1f mV (nominal 225)\n",
		a.WorstCaseAggressorEye(2), a.WorstCaseAggressorEye(3))
}

func must(err error) {
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "smores-sim:", err)
		os.Exit(1)
	}
}
