// Command smores-trace records workload access traces, inspects them,
// and replays them through the simulator so different encoding policies
// can be compared on bit-identical traffic. It handles both the flat
// SMTR v1 stream and the sharded columnar store format
// (internal/tracestore): -pack/-unpack convert between the two, -import
// ingests external CSV/binary memory traces, -scan column-scans a store
// decoding only the requested fields, and -info/-replay accept either a
// trace file or a store directory.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"smores/internal/gpu"
	"smores/internal/memctrl"
	"smores/internal/obs"
	"smores/internal/trace"
	"smores/internal/tracestore"
	"smores/internal/workload"
)

func main() {
	var (
		record   = flag.String("record", "", "record the named workload to -out")
		out      = flag.String("out", "trace.smtr", "output trace path for -record/-unpack")
		info     = flag.String("info", "", "summarize a trace file or store directory")
		replay   = flag.String("replay", "", "replay a trace file or store directory through the simulator")
		chrome   = flag.String("chrome", "", "during -replay, also write a cycle-level Chrome trace-event JSON (Perfetto) to this file")
		folded   = flag.String("folded", "", "during -replay, write the energy-attribution profile as folded stacks (flamegraph.pl input) to this file")
		profJSON = flag.String("profile", "", "during -replay, write the energy-attribution profile snapshot as JSON to this file")
		accesses = flag.Int64("n", 50000, "accesses to record")
		seed     = flag.Uint64("seed", 1, "generator seed")

		pack     = flag.String("pack", "", "convert an SMTR trace into a columnar store at -store")
		unpack   = flag.String("unpack", "", "convert a columnar store back into an SMTR trace at -out")
		doImport = flag.String("import", "", "import an external memory trace (CSV or binary) into a store at -store")
		scan     = flag.String("scan", "", "column-scan a store directory, decoding only -fields")
		verify   = flag.String("verify", "", "read every record of a store, validating every block checksum")

		storeDir  = flag.String("store", "trace.store", "store directory written by -pack/-import")
		name      = flag.String("name", "", "workload name for -pack/-import (default: source file base name)")
		shards    = flag.Int("shards", 1, "shard count for -pack (shards compress in parallel)")
		statsJSON = flag.String("stats-json", "", "with -info on a store, also write per-column stats JSON to this file")

		fields    = flag.String("fields", "sector", "comma-separated columns for -scan (think,sector,flags,payload)")
		minSector = flag.Uint64("min-sector", 0, "with -scan, keep records at or above this sector")
		maxSector = flag.Uint64("max-sector", ^uint64(0), "with -scan, keep records at or below this sector")

		format      = flag.String("format", "", "import format: csv or binary (default: by file extension)")
		addrCol     = flag.String("addr-col", "", "CSV import: explicit address column header")
		thinkCol    = flag.String("think-col", "", "CSV import: explicit think column header")
		opCol       = flag.String("op-col", "", "CSV import: explicit read/write column header")
		payloadCol  = flag.String("payload-col", "", "CSV import: explicit payload column header")
		sectorBytes = flag.Int("sector-bytes", 0, "import: bytes per sector when dividing byte addresses (default 32)")
		payload     = flag.Bool("payload", false, "CSV import: capture the payload column (exact-data replay)")
	)
	flag.Parse()

	importOpts := tracestore.ImportOptions{
		SectorBytes: *sectorBytes,
		AddrCol:     *addrCol,
		ThinkCol:    *thinkCol,
		OpCol:       *opCol,
		PayloadCol:  *payloadCol,
	}
	switch {
	case *record != "":
		fail(doRecord(*record, *out, *accesses, *seed))
	case *pack != "":
		fail(doPack(*pack, *storeDir, *name, *seed, *shards))
	case *unpack != "":
		fail(doUnpack(*unpack, *out))
	case *doImport != "":
		fail(runImport(*doImport, *storeDir, *name, *format, *payload, importOpts))
	case *scan != "":
		fail(doScan(*scan, *fields, *minSector, *maxSector))
	case *verify != "":
		fail(doVerify(*verify))
	case *info != "":
		fail(doInfo(*info, *statsJSON))
	case *replay != "":
		fail(doReplay(*replay, *chrome, *folded, *profJSON))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func doRecord(app, path string, n int64, seed uint64) error {
	p, ok := workload.ByName(app)
	if !ok {
		return fmt.Errorf("unknown workload %q", app)
	}
	gen, err := workload.OpenGenerator(p, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := trace.NewWriter(f)
	rec := trace.NewRecorder(gen, w)
	var count int64
	for count < n {
		if _, ok := rec.Next(); !ok {
			break
		}
		count++
	}
	// Recorder errors, the flush, and the file close all matter: a short
	// write anywhere leaves a trace that silently replays less traffic.
	if err := rec.Err(); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %d accesses of %s to %s\n", w.Count(), app, path)
	return nil
}

// isStore reports whether path is a store directory.
func isStore(path string) bool {
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		return false
	}
	_, err = os.Stat(filepath.Join(path, tracestore.ManifestName))
	return err == nil
}

// defaultName derives a workload name from a source path.
func defaultName(name, source string) string {
	if name != "" {
		return name
	}
	base := filepath.Base(source)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

func doPack(src, dir, name string, seed uint64, shards int) error {
	meta := tracestore.Meta{Name: defaultName(name, src), Seed: seed}
	f, err := os.Open(src)
	if err != nil {
		return err
	}
	defer f.Close()
	var m tracestore.Manifest
	if shards <= 1 {
		m, err = tracestore.FromSMTR(f, dir, meta)
	} else {
		var accesses []gpu.Access
		accesses, err = trace.ReadAll(f)
		if err != nil {
			return err
		}
		recs := make([]tracestore.Record, len(accesses))
		for i, a := range accesses {
			recs[i] = tracestore.Record{Access: a}
		}
		meta.Source = "smtr"
		m, err = tracestore.WriteRecords(dir, meta, recs, shards)
	}
	if err != nil {
		return err
	}
	fmt.Printf("packed %d records of %s into %s (%d shards)\n",
		m.Records, src, dir, len(m.Shards))
	return nil
}

func doUnpack(dir, out string) error {
	s, err := tracestore.Open(dir)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	n, err := tracestore.ToSMTR(s, f)
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("unpacked %d records of %s to %s\n", n, dir, out)
	return nil
}

func runImport(src, dir, name, format string, payload bool, opts tracestore.ImportOptions) error {
	if format == "" {
		switch strings.ToLower(filepath.Ext(src)) {
		case ".csv":
			format = "csv"
		case ".bin", ".mtr":
			format = "binary"
		default:
			return fmt.Errorf("cannot infer import format of %q; pass -format csv|binary", src)
		}
	}
	f, err := os.Open(src)
	if err != nil {
		return err
	}
	defer f.Close()
	meta := tracestore.Meta{Name: defaultName(name, src), Payload: payload}
	var m tracestore.Manifest
	switch format {
	case "csv":
		m, err = tracestore.ImportCSV(f, dir, meta, opts)
	case "binary":
		m, err = tracestore.ImportBinary(f, dir, meta, opts)
	default:
		return fmt.Errorf("unknown import format %q (want csv or binary)", format)
	}
	if err != nil {
		return err
	}
	fmt.Printf("imported %d records (%d writes) from %s into %s as workload %q\n",
		m.Records, m.Writes, src, dir, m.Name)
	return nil
}

func doScan(dir, fieldList string, minSector, maxSector uint64) error {
	set, err := tracestore.ParseFields(fieldList)
	if err != nil {
		return err
	}
	s, err := tracestore.Open(dir)
	if err != nil {
		return err
	}
	opts := tracestore.ReadOptions{Fields: set}
	if minSector != 0 || maxSector != ^uint64(0) {
		opts.FilterSector = true
		opts.MinSector = minSector
		opts.MaxSector = maxSector
	}
	r, err := s.NewReader(opts)
	if err != nil {
		return err
	}
	defer r.Close()
	var n int64
	for {
		_, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		n++
	}
	fmt.Printf("scanned %d of %d records (fields %s, %d blocks read, %d skipped)\n",
		n, s.Records(), set, r.BlocksRead(), r.BlocksSkipped())
	for _, f := range []tracestore.Field{tracestore.FieldThink, tracestore.FieldSector,
		tracestore.FieldFlags, tracestore.FieldPayload} {
		fmt.Printf("  %-8s %8d bytes read\n", f, r.BytesRead(f))
	}
	return nil
}

func doVerify(dir string) error {
	s, err := tracestore.Open(dir)
	if err != nil {
		return err
	}
	set := tracestore.AccessFields
	if s.Manifest.Payload {
		set |= tracestore.SetPayload
	}
	recs, err := tracestore.ReadAll(s, set)
	if err != nil {
		return err
	}
	if int64(len(recs)) != s.Records() {
		return fmt.Errorf("store %s: read %d records, manifest claims %d", dir, len(recs), s.Records())
	}
	fmt.Printf("verified %d records across %d shards: all checksums good\n",
		s.Records(), len(s.Manifest.Shards))
	return nil
}

func doInfo(path, statsJSON string) error {
	if isStore(path) {
		return storeInfo(path, statsJSON)
	}
	if statsJSON != "" {
		return fmt.Errorf("-stats-json needs a store directory, and %s is a flat trace", path)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := trace.NewReader(f)
	var n, writes, think int64
	var maxSector uint64
	for {
		a, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		n++
		if a.Write {
			writes++
		}
		think += a.Think
		if a.Sector > maxSector {
			maxSector = a.Sector
		}
	}
	if n == 0 {
		fmt.Println("empty trace")
		return nil
	}
	fmt.Printf("%s: %d accesses, %.1f%% writes, mean think %.2f clocks, footprint ≤ %d MB\n",
		path, n, float64(writes)/float64(n)*100, float64(think)/float64(n), (maxSector+1)*32>>20)
	return nil
}

func storeInfo(dir, statsJSON string) error {
	s, err := tracestore.Open(dir)
	if err != nil {
		return err
	}
	m := s.Manifest
	fmt.Printf("%s: store of %q (suite %s, source %s), %d records in %d shards\n",
		dir, m.Name, m.Suite, m.Source, m.Records, len(m.Shards))
	if m.Records > 0 {
		fmt.Printf("  %.1f%% writes, mean think %.2f clocks, footprint ≤ %d MB\n",
			float64(m.Writes)/float64(m.Records)*100,
			float64(m.SumThink)/float64(m.Records),
			(m.MaxSector+1)*32>>20)
	}
	st := s.Stats()
	for _, c := range st.Columns {
		fmt.Printf("  %-8s %9d → %9d bytes (%.2fx)\n",
			c.Field, c.RawBytes, c.CompressedBytes, c.Ratio)
	}
	if st.CompressedBytes > 0 {
		fmt.Printf("  total    %9d → %9d bytes (%.2fx, %.2f B/record)\n",
			st.RawBytes, st.CompressedBytes, st.Ratio, st.BytesPerRecord)
	}
	if statsJSON != "" {
		f, err := os.Create(statsJSON)
		if err != nil {
			return err
		}
		if err := tracestore.WriteStatsJSON(f, st); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote store stats to %s\n", statsJSON)
	}
	return nil
}

// replayGenerator opens path as a replay source: a store directory or a
// flat SMTR trace. The returned done func surfaces replay errors and
// releases the source.
func replayGenerator(path string) (gpu.Generator, func() error, error) {
	if isStore(path) {
		s, err := tracestore.Open(path)
		if err != nil {
			return nil, nil, err
		}
		rep, err := s.Replayer()
		if err != nil {
			return nil, nil, err
		}
		return rep, rep.Err, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	rep := trace.NewReplayer(f)
	return rep, func() error {
		if err := rep.Err(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}

func doReplay(path, chrome, folded, profJSON string) error {
	rep, done, err := replayGenerator(path)
	if err != nil {
		return err
	}
	cfg := memctrl.Config{Policy: memctrl.BaselineMTA}
	var tracer *obs.Tracer
	if chrome != "" {
		tracer = obs.NewTracer(0)
		cfg.Tracer = tracer
	}
	var prof *obs.Profile
	if folded != "" || profJSON != "" {
		prof = obs.NewProfile()
		cfg.Bus.Profile = prof
	}
	ctrl, err := memctrl.New(cfg)
	if err != nil {
		return err
	}
	drv, err := gpu.NewDriver(gpu.DriverConfig{MSHRs: 48}, ctrl, rep)
	if err != nil {
		return err
	}
	res, err := drv.Run()
	if err != nil {
		return err
	}
	if err := done(); err != nil {
		return err
	}
	fmt.Printf("replayed %d accesses in %d clocks: %.1f fJ/bit, gaps %v\n",
		res.Accesses, res.Clocks, ctrl.BusStats().PerBit(), ctrl.ReadGapHistogram())
	if tracer != nil {
		cf, err := os.Create(chrome)
		if err != nil {
			return err
		}
		if err := tracer.WriteChromeTrace(cf); err != nil {
			cf.Close()
			return err
		}
		if err := cf.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace events to %s (%d dropped by ring)\n",
			tracer.Len(), chrome, tracer.Dropped())
	}
	if prof != nil {
		s := prof.Snapshot()
		write := func(path string, emit func(io.Writer) error) error {
			if path == "" {
				return nil
			}
			pf, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := emit(pf); err != nil {
				pf.Close()
				return err
			}
			if err := pf.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote energy attribution (%.4g fJ over %d symbols) to %s\n",
				prof.TotalEnergy(), prof.TotalSymbols(), path)
			return nil
		}
		if err := write(folded, func(w io.Writer) error { return obs.WriteProfileFolded(w, s) }); err != nil {
			return err
		}
		if err := write(profJSON, func(w io.Writer) error { return obs.WriteProfileJSON(w, s) }); err != nil {
			return err
		}
	}
	return nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "smores-trace:", err)
		os.Exit(1)
	}
}
