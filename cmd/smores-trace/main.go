// Command smores-trace records workload access traces to the compact
// binary format, inspects them, and replays them through the simulator so
// different encoding policies can be compared on bit-identical traffic.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"smores/internal/gpu"
	"smores/internal/memctrl"
	"smores/internal/obs"
	"smores/internal/trace"
	"smores/internal/workload"
)

func main() {
	var (
		record   = flag.String("record", "", "record the named workload to -out")
		out      = flag.String("out", "trace.smtr", "output trace path")
		info     = flag.String("info", "", "summarize a trace file")
		replay   = flag.String("replay", "", "replay a trace through the simulator")
		chrome   = flag.String("chrome", "", "during -replay, also write a cycle-level Chrome trace-event JSON (Perfetto) to this file")
		folded   = flag.String("folded", "", "during -replay, write the energy-attribution profile as folded stacks (flamegraph.pl input) to this file")
		profJSON = flag.String("profile", "", "during -replay, write the energy-attribution profile snapshot as JSON to this file")
		accesses = flag.Int64("n", 50000, "accesses to record")
		seed     = flag.Uint64("seed", 1, "generator seed")
	)
	flag.Parse()

	switch {
	case *record != "":
		fail(doRecord(*record, *out, *accesses, *seed))
	case *info != "":
		fail(doInfo(*info))
	case *replay != "":
		fail(doReplay(*replay, *chrome, *folded, *profJSON))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func doRecord(app, path string, n int64, seed uint64) error {
	p, ok := workload.ByName(app)
	if !ok {
		return fmt.Errorf("unknown workload %q", app)
	}
	gen, err := workload.NewGenerator(p, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f)
	for i := int64(0); i < n; i++ {
		a, ok := gen.Next()
		if !ok {
			break
		}
		if err := w.Append(a); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("recorded %d accesses of %s to %s\n", w.Count(), app, path)
	return nil
}

func doInfo(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := trace.NewReader(f)
	var n, writes, think int64
	var maxSector uint64
	for {
		a, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		n++
		if a.Write {
			writes++
		}
		think += a.Think
		if a.Sector > maxSector {
			maxSector = a.Sector
		}
	}
	if n == 0 {
		fmt.Println("empty trace")
		return nil
	}
	fmt.Printf("%s: %d accesses, %.1f%% writes, mean think %.2f clocks, footprint ≤ %d MB\n",
		path, n, float64(writes)/float64(n)*100, float64(think)/float64(n), (maxSector+1)*32>>20)
	return nil
}

func doReplay(path, chrome, folded, profJSON string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rep := trace.NewReplayer(f)
	cfg := memctrl.Config{Policy: memctrl.BaselineMTA}
	var tracer *obs.Tracer
	if chrome != "" {
		tracer = obs.NewTracer(0)
		cfg.Tracer = tracer
	}
	var prof *obs.Profile
	if folded != "" || profJSON != "" {
		prof = obs.NewProfile()
		cfg.Bus.Profile = prof
	}
	ctrl, err := memctrl.New(cfg)
	if err != nil {
		return err
	}
	drv, err := gpu.NewDriver(gpu.DriverConfig{MSHRs: 48}, ctrl, rep)
	if err != nil {
		return err
	}
	res, err := drv.Run()
	if err != nil {
		return err
	}
	if rep.Err() != nil {
		return rep.Err()
	}
	fmt.Printf("replayed %d accesses in %d clocks: %.1f fJ/bit, gaps %v\n",
		res.Accesses, res.Clocks, ctrl.BusStats().PerBit(), ctrl.ReadGapHistogram())
	if tracer != nil {
		cf, err := os.Create(chrome)
		if err != nil {
			return err
		}
		if err := tracer.WriteChromeTrace(cf); err != nil {
			cf.Close()
			return err
		}
		if err := cf.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace events to %s (%d dropped by ring)\n",
			tracer.Len(), chrome, tracer.Dropped())
	}
	if prof != nil {
		s := prof.Snapshot()
		write := func(path string, emit func(io.Writer) error) error {
			if path == "" {
				return nil
			}
			pf, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := emit(pf); err != nil {
				pf.Close()
				return err
			}
			if err := pf.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote energy attribution (%.4g fJ over %d symbols) to %s\n",
				prof.TotalEnergy(), prof.TotalSymbols(), path)
			return nil
		}
		if err := write(folded, func(w io.Writer) error { return obs.WriteProfileFolded(w, s) }); err != nil {
			return err
		}
		if err := write(profJSON, func(w io.Writer) error { return obs.WriteProfileJSON(w, s) }); err != nil {
			return err
		}
	}
	return nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "smores-trace:", err)
		os.Exit(1)
	}
}
