// Command smores-bench is the energy/performance regression gate: it
// runs the standard evaluation matrix (baseline, optimized MTA, and the
// three SMOREs design points) at a fixed access budget and writes a
// BENCH_<date>.json report with, per scheme, the reproduced energy
// (pJ/bit — deterministic), the wall-clock throughput, and the
// allocation profile. With -compare it gates the run against a
// committed baseline: energy is always enforced; throughput and
// allocations only when the host fingerprint matches the baseline's
// (so CI runners still get the energy gate against a baseline
// generated elsewhere).
//
//	smores-bench -out BENCH_baseline.json          # seed a baseline
//	smores-bench -compare BENCH_baseline.json      # gate (exit 1 on regression)
//	smores-bench -multichannel 8 -compare ...      # also gate the sharded fleet row
//	smores-bench -tracestore -compare ...          # also gate the store-replay row
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"smores/internal/obs/session"
	"smores/internal/report"
)

func main() {
	var (
		accesses = flag.Int64("accesses", report.DefaultBenchAccesses, "per-app workload length")
		seed     = flag.Uint64("seed", 1, "deterministic traffic seed")
		workers  = flag.Int("j", 1, "concurrent app simulations (1 = sequential, most reproducible allocs)")
		out      = flag.String("out", "", "report path (default BENCH_<date>.json; '-' for stdout only)")
		compare  = flag.String("compare", "", "baseline report to gate against")
		tol      = flag.String("tolerance", "5%", "relative energy tolerance ('5%' or '0.05')")
		perfTol  = flag.String("perf-tolerance", "30%", "relative wall-time/alloc tolerance (same-host only)")
		service  = flag.Bool("service", false, "add the telemetry-service throughput row (sessions/sec at a fixed spec)")
		multi    = flag.Int("multichannel", 0, "add the sharded multi-channel fleet row at this channel count (0 = off)")
		multiJ   = flag.Int("multichannel-j", 0, "worker pool for the multichannel row (0 = GOMAXPROCS)")
		tstore   = flag.Bool("tracestore", false, "add the columnar-store replay row (record, pack, byte-identical replay)")
		tshards  = flag.Int("tracestore-shards", 0, "shards for the tracestore row's pack (0 = GOMAXPROCS, capped at 8)")
		quiet    = flag.Bool("q", false, "suppress the report table")
	)
	flag.Parse()

	energyTol, err := report.ParseTolerance(*tol)
	fail(err)
	wallTol, err := report.ParseTolerance(*perfTol)
	fail(err)

	rep, err := report.RunBench(report.BenchConfig{
		Accesses: *accesses, Seed: *seed, Workers: *workers,
	})
	fail(err)
	if *service {
		svc, err := session.RunServiceBench(session.DefaultBenchSpec)
		fail(err)
		rep.Service = svc
	}
	if *multi > 0 {
		fail(report.RunMultiChannelBench(&rep, *multi, *multiJ))
	}
	if *tstore {
		fail(report.RunTraceStoreBench(&rep, *tshards))
	}
	if !*quiet {
		fmt.Print(report.RenderBench(rep))
	}

	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}
	if path == "-" {
		fail(report.WriteBench(os.Stdout, rep))
	} else {
		f, err := os.Create(path)
		fail(err)
		fail(report.WriteBench(f, rep))
		fail(f.Close())
		fmt.Fprintf(os.Stderr, "smores-bench: wrote %s\n", path)
	}

	if *compare == "" {
		return
	}
	base, err := report.ReadBench(*compare)
	fail(err)
	cmp, err := report.CompareBench(base, rep, energyTol, wallTol)
	fail(err)
	for _, n := range cmp.Notes {
		fmt.Fprintf(os.Stderr, "smores-bench: note: %s\n", n)
	}
	if len(cmp.Regressions) > 0 {
		for _, r := range cmp.Regressions {
			fmt.Fprintf(os.Stderr, "smores-bench: REGRESSION: %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "smores-bench: %d schemes within tolerance of %s — 0 regressions\n",
		len(rep.Schemes), *compare)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "smores-bench:", err)
		os.Exit(1)
	}
}
