package smores

// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation, plus throughput benchmarks of the core machinery and the
// ablations discussed in the text. Reproduced quantities are attached as
// custom metrics (fJ/bit, saving %, NAND2, gap fractions) so
// `go test -bench=. -benchmem` regenerates the paper's numbers alongside
// the usual ns/op.

import (
	"testing"

	"smores/internal/bus"
	"smores/internal/codec"
	"smores/internal/core"
	"smores/internal/dbi"
	"smores/internal/eyesim"
	"smores/internal/gpu"
	"smores/internal/hwcost"
	"smores/internal/memctrl"
	"smores/internal/mta"
	"smores/internal/pam4"
	"smores/internal/report"
	"smores/internal/rng"
	"smores/internal/sweep"
	"smores/internal/verilog"
	"smores/internal/workload"
)

// benchFleetAccesses keeps fleet-level benches to a few seconds each.
const benchFleetAccesses = 1500

// ---------------------------------------------------------------------
// Figures 1 and 2: the electrical/energy model.

func BenchmarkFig1SymbolEnergy(b *testing.B) {
	var m *pam4.EnergyModel
	for i := 0; i < b.N; i++ {
		var err error
		m, err = pam4.NewEnergyModel(pam4.DefaultDriver(), pam4.CalibratedMeanSymbolEnergy)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.MeanSymbolEnergy(), "fJ/symbol")
	b.ReportMetric(m.PAM4PerBit(), "fJ/bit")
}

func BenchmarkFig2DriverTable(b *testing.B) {
	d := pam4.DefaultDriver()
	var pts [pam4.NumLevels]pam4.LevelPoint
	for i := 0; i < b.N; i++ {
		pts = d.OperatingPoints()
	}
	b.ReportMetric(pts[1].SupplyAmps*1e3, "mA(L1)")
	b.ReportMetric(d.LevelSpacing()*1e3, "mV/step")
}

// ---------------------------------------------------------------------
// Table I / Figure 3: the MTA baseline.

func BenchmarkTable1MTATable(b *testing.B) {
	m := pam4.DefaultEnergyModel()
	var c *mta.Codec
	for i := 0; i < b.N; i++ {
		c = mta.New(m)
	}
	b.ReportMetric(c.ExpectedPerBit(), "fJ/bit") // paper: 574.8
}

func BenchmarkMTAEncodeGroupBeat(b *testing.B) {
	c := mta.New(pam4.DefaultEnergyModel())
	r := rng.New(1)
	var data [mta.GroupDataWires]byte
	r.Fill(data[:])
	st := mta.IdleGroupState()
	b.SetBytes(mta.GroupDataWires)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncodeGroupBeat(data, &st)
	}
}

func BenchmarkMTADecodeGroupBeat(b *testing.B) {
	c := mta.New(pam4.DefaultEnergyModel())
	r := rng.New(1)
	var data [mta.GroupDataWires]byte
	r.Fill(data[:])
	encSt := mta.IdleGroupState()
	beat := c.EncodeGroupBeat(data, &encSt)
	b.SetBytes(mta.GroupDataWires)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decSt := mta.IdleGroupState()
		if _, ok := c.DecodeGroupBeat(beat, &decSt); !ok {
			b.Fatal("decode failed")
		}
	}
}

// ---------------------------------------------------------------------
// Table III: restricted code spaces.

func BenchmarkTable3CodeSpace(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		total = 0
		for n := 2; n <= 8; n++ {
			c, err := codec.Count(codec.EnumConstraint{
				Symbols: n, MaxLevel: pam4.L2, MaxStartLevel: pam4.L2, MaxStep: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			total += c
		}
	}
	b.ReportMetric(float64(total), "sequences")
}

// ---------------------------------------------------------------------
// Table IV / Figure 6: per-encoding energies and the code survey.

func BenchmarkTable4Energy(b *testing.B) {
	m := pam4.DefaultEnergyModel()
	var fam *core.Family
	for i := 0; i < b.N; i++ {
		var err error
		fam, err = core.NewFamily(m, core.DefaultFamilyConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fam.ByLength(3).ExpectedPerBit()+7, "fJ/bit(4b3s+logic)") // paper: 432.3
	b.ReportMetric(fam.ByLength(8).ExpectedPerBit()+7, "fJ/bit(4b8s+logic)") // paper: 319.7
	b.ReportMetric(dbi.NewPAM4Codec(true, m).ExpectedPerBit(), "fJ/bit(PAM4-DBI)")
}

func BenchmarkFig6CodeSurvey(b *testing.B) {
	m := pam4.DefaultEnergyModel()
	var last float64
	for i := 0; i < b.N; i++ {
		for _, lv := range []int{2, 3} {
			for _, withDBI := range []bool{false, true} {
				fam, err := core.NewFamily(m, core.FamilyConfig{DBI: withDBI, Levels: lv})
				if err != nil {
					b.Fatal(err)
				}
				for _, n := range fam.Lengths() {
					last = fam.ByLength(n).ExpectedPerBit()
				}
			}
		}
	}
	b.ReportMetric(last, "fJ/bit(last)")
}

func BenchmarkSparseEncodeGroupBurst(b *testing.B) {
	fam := core.DefaultFamily()
	c := fam.ByLength(3)
	r := rng.New(2)
	data := make([]byte, 16)
	r.Fill(data)
	st := mta.IdleGroupState()
	b.SetBytes(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncodeGroupBurst(data, &st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparseDecodeGroupBurst(b *testing.B) {
	fam := core.DefaultFamily()
	c := fam.ByLength(3)
	r := rng.New(2)
	data := make([]byte, 16)
	r.Fill(data)
	encSt := mta.IdleGroupState()
	cols, err := c.EncodeGroupBurst(data, &encSt)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := mta.IdleGroupState()
		if _, ok := c.DecodeGroupBurst(cols, 16, &st); !ok {
			b.Fatal("decode failed")
		}
	}
}

// ---------------------------------------------------------------------
// Figure 7: hardware cost.

func BenchmarkFig7HardwareCost(b *testing.B) {
	m := pam4.DefaultEnergyModel()
	var reports []hwcost.Report
	for i := 0; i < b.N; i++ {
		var err error
		reports, err = hwcost.Fig7Reports(m)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range reports {
		if r.Name == "MTA" {
			b.ReportMetric(r.Cost.AreaNAND2, "NAND2(MTA)")
			b.ReportMetric(r.Cost.DelayNAND2, "delays(MTA)")
		}
	}
}

func BenchmarkAblationDBIArea(b *testing.B) {
	m := pam4.DefaultEnergyModel()
	var saving3, saving8 float64
	for i := 0; i < b.N; i++ {
		reports, err := hwcost.Fig7Reports(m)
		if err != nil {
			b.Fatal(err)
		}
		byName := map[string]hwcost.Cost{}
		for _, r := range reports {
			byName[r.Name] = r.Cost
		}
		saving3 = 1 - byName["4b3s-3"].AreaNAND2/byName["4b3s-3/DBI"].AreaNAND2
		saving8 = 1 - byName["4b8s-3"].AreaNAND2/byName["4b8s-3/DBI"].AreaNAND2
	}
	b.ReportMetric(saving3*100, "%area(4b3s)") // paper: 42
	b.ReportMetric(saving8*100, "%area(4b8s)") // paper: 86
}

// ---------------------------------------------------------------------
// Figure 5: idle-gap distributions from the full simulator.

func BenchmarkFig5GapHistogram(b *testing.B) {
	var fr report.FleetResult
	for i := 0; i < b.N; i++ {
		var err error
		fr, err = report.RunFleet(report.RunSpec{
			Policy: memctrl.BaselineMTA, Accesses: benchFleetAccesses, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	gaps, err := fr.AggregateGaps(true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(gaps.Fraction(0)*100, "%gap0") // paper: 59.2
	b.ReportMetric(gaps.Fraction(1)*100, "%gap1") // paper: 29.1
	b.ReportMetric(gaps.OverflowFraction()*100, "%gap>16")
}

// ---------------------------------------------------------------------
// Figure 8 / Table V: energy savings of the SMOREs schemes.

func benchFleet(b *testing.B, policy memctrl.EncodingPolicy, scheme core.Scheme) report.FleetResult {
	b.Helper()
	fr, err := report.RunFleet(report.RunSpec{
		Policy: policy, Scheme: scheme, Accesses: benchFleetAccesses, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return fr
}

func BenchmarkFig8aEnergy(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		base := benchFleet(b, memctrl.BaselineMTA, core.Scheme{})
		variable := benchFleet(b, memctrl.SMOREs,
			core.Scheme{Specification: core.VariableCode, Detection: core.Exhaustive})
		saving = 1 - variable.MeanPerBit()/base.MeanPerBit()
	}
	b.ReportMetric(saving*100, "%saving") // paper: 28.2
}

func BenchmarkFig8bEnergy(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		opt := benchFleet(b, memctrl.OptimizedMTA, core.Scheme{})
		variable := benchFleet(b, memctrl.SMOREs,
			core.Scheme{Specification: core.VariableCode, Detection: core.Exhaustive})
		ratio = variable.MeanPerBit() / opt.MeanPerBit()
	}
	b.ReportMetric(ratio, "x-optimizedMTA")
}

func BenchmarkTable5Schemes(b *testing.B) {
	var sVar, sStat, sCons float64
	for i := 0; i < b.N; i++ {
		base := benchFleet(b, memctrl.BaselineMTA, core.Scheme{})
		v := benchFleet(b, memctrl.SMOREs, core.Scheme{Specification: core.VariableCode, Detection: core.Exhaustive})
		s := benchFleet(b, memctrl.SMOREs, core.Scheme{Specification: core.StaticCode, Detection: core.Exhaustive})
		c := benchFleet(b, memctrl.SMOREs, core.Scheme{Specification: core.StaticCode, Detection: core.Conservative})
		sVar = 1 - v.MeanPerBit()/base.MeanPerBit()
		sStat = 1 - s.MeanPerBit()/base.MeanPerBit()
		sCons = 1 - c.MeanPerBit()/base.MeanPerBit()
	}
	b.ReportMetric(sVar*100, "%variable")      // paper: 28.2
	b.ReportMetric(sStat*100, "%static")       // paper: 26.8
	b.ReportMetric(sCons*100, "%conservative") // paper: 25.2
}

func BenchmarkPerfDegradation(b *testing.B) {
	var degr float64
	for i := 0; i < b.N; i++ {
		base := benchFleet(b, memctrl.BaselineMTA, core.Scheme{})
		v := benchFleet(b, memctrl.SMOREs, core.Scheme{Specification: core.VariableCode, Detection: core.Exhaustive})
		var bc, vc int64
		for j := range base.Results {
			bc += base.Results[j].Clocks
			vc += v.Results[j].Clocks
		}
		degr = float64(vc)/float64(bc) - 1
	}
	b.ReportMetric(degr*100, "%slowdown") // paper: 0.024
}

// ---------------------------------------------------------------------
// Text ablations.

func BenchmarkAblationMTADrop(b *testing.B) {
	m := pam4.DefaultEnergyModel()
	var overhead float64
	for i := 0; i < b.N; i++ {
		std := mta.New(m)
		abl, err := mta.NewVariant(m, mta.DropLowest11)
		if err != nil {
			b.Fatal(err)
		}
		overhead = abl.ExpectedPerBit()/std.ExpectedPerBit() - 1
	}
	b.ReportMetric(overhead*100, "%overhead") // paper: ≈2
}

func BenchmarkAblationExtraCycle(b *testing.B) {
	p, _ := workload.ByName("bfs")
	var degr float64
	for i := 0; i < b.N; i++ {
		base, err := report.RunApp(p, report.RunSpec{
			Policy: memctrl.BaselineMTA, Accesses: benchFleetAccesses, Seed: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		slow, err := report.RunApp(p, report.RunSpec{
			Policy: memctrl.BaselineMTA, Accesses: benchFleetAccesses, Seed: 2,
			ExtraCodecLatency: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		degr = float64(slow.Clocks)/float64(base.Clocks) - 1
	}
	b.ReportMetric(degr*100, "%slowdown") // paper: 0.14
}

func BenchmarkTotalPowerContext(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		base := benchFleet(b, memctrl.BaselineMTA, core.Scheme{})
		share = base.MeanPerBit() / (report.PaperDRAMTotalPJPerBit * 1000)
	}
	b.ReportMetric(share*100, "%ofDRAMpower") // paper: ≈10
}

// ---------------------------------------------------------------------
// Machinery throughput.

func BenchmarkBurstCodecEncode(b *testing.B) {
	c := NewBurstCodec()
	r := rng.New(3)
	data := make([]byte, BurstBytes)
	r.Fill(data)
	b.SetBytes(BurstBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChannelExpectedMode(b *testing.B) {
	ch := bus.New(bus.Config{})
	b.SetBytes(bus.BurstBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ch.SendBurst(nil, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkControllerTick(b *testing.B) {
	ctrl, err := memctrl.New(memctrl.Config{
		Policy: memctrl.SMOREs,
		Scheme: core.Scheme{Specification: core.StaticCode, Detection: core.Exhaustive},
	})
	if err != nil {
		b.Fatal(err)
	}
	p, _ := workload.ByName("bfs")
	gen, err := workload.NewGenerator(p, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a, ok := gen.Next(); ok {
			kind := memctrl.Read
			if a.Write {
				kind = memctrl.Write
			}
			ctrl.Enqueue(&memctrl.Request{ID: uint64(i), Kind: kind, Sector: a.Sector})
		}
		ctrl.Tick()
	}
}

func BenchmarkLLCAccess(b *testing.B) {
	llc, err := gpu.NewLLC(gpu.DefaultLLCConfig())
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		llc.Access(uint64(r.Intn(1<<20)), i%4 == 0)
	}
}

func BenchmarkQuineMcCluskey7Input(b *testing.B) {
	m := pam4.DefaultEnergyModel()
	c := mta.New(m)
	for i := 0; i < b.N; i++ {
		if _, err := hwcost.MTAEncoderCost(c); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Extension subsystems.

func BenchmarkVerilogEmitStandardSet(b *testing.B) {
	m := pam4.DefaultEnergyModel()
	fam, err := core.NewFamily(m, core.DefaultFamilyConfig())
	if err != nil {
		b.Fatal(err)
	}
	var books []*codec.Codebook
	for _, n := range fam.Lengths() {
		books = append(books, fam.ByLength(n).Book())
	}
	c := mta.New(m)
	var chars int
	for i := 0; i < b.N; i++ {
		chars = 0
		for _, mod := range verilog.StandardSet(c, books) {
			chars += len(mod.Emit())
		}
	}
	b.ReportMetric(float64(chars), "chars")
}

func BenchmarkEyeAnalysis(b *testing.B) {
	a, err := eyesim.New(eyesim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	c := mta.New(pam4.DefaultEnergyModel())
	r := rng.New(9)
	st := mta.IdleGroupState()
	var cols []mta.Column
	for i := 0; i < 500; i++ {
		var data [mta.GroupDataWires]byte
		r.Fill(data[:])
		bc := c.EncodeGroupBeat(data, &st).Columns()
		cols = append(cols, bc[:]...)
	}
	b.ResetTimer()
	var rep eyesim.Report
	for i := 0; i < b.N; i++ {
		rep = a.Analyze(mta.IdleGroupState(), cols)
	}
	b.ReportMetric(rep.WorstEyeMV, "mV(worst-eye)")
}

func BenchmarkErrorDetectionStudy(b *testing.B) {
	fam := core.DefaultFamily()
	var rate float64
	for i := 0; i < b.N; i++ {
		rate = fam.ByLength(3).Book().SingleSymbolErrors().DetectionRate()
	}
	b.ReportMetric(rate*100, "%detected(4b3s)")
}

func BenchmarkMultiChannel(b *testing.B) {
	p, _ := workload.ByName("bert")
	var mr report.MultiResult
	for i := 0; i < b.N; i++ {
		var err error
		mr, err = report.RunAppMultiChannel(p, report.RunSpec{
			Policy:   memctrl.SMOREs,
			Scheme:   core.Scheme{Specification: core.StaticCode, Detection: core.Exhaustive},
			Accesses: 4000, Seed: 3,
		}, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mr.PerBit, "fJ/bit")
}

// BenchmarkMultiChannelSharded is the same workload on the
// shard-per-goroutine engine with a saturated pool — the headline
// speedup over BenchmarkMultiChannel's lockstep interleaver.
func BenchmarkMultiChannelSharded(b *testing.B) {
	p, _ := workload.ByName("bert")
	var mr report.MultiResult
	for i := 0; i < b.N; i++ {
		var err error
		mr, err = report.RunAppMultiChannelSharded(p, report.RunSpec{
			Policy:   memctrl.SMOREs,
			Scheme:   core.Scheme{Specification: core.StaticCode, Detection: core.Exhaustive},
			Accesses: 4000, Seed: 3,
		}, 4, report.ShardOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mr.PerBit, "fJ/bit")
}

func BenchmarkAblationClosedPage(b *testing.B) {
	p, _ := workload.ByName("srad")
	var openSave, closedSave float64
	for i := 0; i < b.N; i++ {
		run := func(pages memctrl.PagePolicy, policy memctrl.EncodingPolicy) float64 {
			r, err := report.RunApp(p, report.RunSpec{
				Policy: policy, Pages: pages, Accesses: 3000, Seed: 4,
				Scheme: core.Scheme{Specification: core.StaticCode, Detection: core.Exhaustive},
			})
			if err != nil {
				b.Fatal(err)
			}
			return r.PerBit
		}
		openSave = 1 - run(memctrl.OpenPage, memctrl.SMOREs)/run(memctrl.OpenPage, memctrl.BaselineMTA)
		closedSave = 1 - run(memctrl.ClosedPage, memctrl.SMOREs)/run(memctrl.ClosedPage, memctrl.BaselineMTA)
	}
	b.ReportMetric(openSave*100, "%save(open)")
	b.ReportMetric(closedSave*100, "%save(closed)")
}

func BenchmarkAblationPerBankRefresh(b *testing.B) {
	// A dense app whose own gaps are small, so the refresh shadow is the
	// worst observed gap.
	p, _ := workload.ByName("bert")
	var abGap, pbGap float64
	for i := 0; i < b.N; i++ {
		run := func(pol memctrl.RefreshPolicy) float64 {
			ctrl, err := memctrl.New(memctrl.Config{Policy: memctrl.BaselineMTA, Refresh: pol})
			if err != nil {
				b.Fatal(err)
			}
			gen, err := workload.NewGenerator(p, 6)
			if err != nil {
				b.Fatal(err)
			}
			drv, err := gpu.NewDriver(gpu.DriverConfig{MSHRs: p.MSHRs, MaxAccesses: 12000}, ctrl, gen)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := drv.Run(); err != nil {
				b.Fatal(err)
			}
			return float64(ctrl.Stats().MaxGapClocks)
		}
		abGap = run(memctrl.AllBank)
		pbGap = run(memctrl.PerBank)
	}
	b.ReportMetric(abGap, "worst-gap(refab)")
	b.ReportMetric(pbGap, "worst-gap(refpb)")
}

func BenchmarkSweepConservativeWindow(b *testing.B) {
	var pts []sweep.Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = sweep.ConservativeWindow(sweep.Config{Accesses: 800, Seed: 1}, []int{4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[len(pts)-1].Saving*100, "%saving(w=8)")
}
